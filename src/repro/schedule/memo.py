"""Persistent cross-round lowering memo: (space, config) -> packed rows.

Every verify round re-lowers its drafted set, yet draft sets overlap
heavily across rounds — GA elites, warm-start seeds and mutation
neighborhoods recur by construction (the same observation behind
parakeet-style ``_lowered_functions`` memos, made array-native here).
:class:`LoweredRowCache` stores already-lowered candidates as rows of a
per-space :class:`~repro.schedule.batch.CandidateBatch` arena; a fetch
gathers the hits with one vectorized ``take`` and lowers only the
missing rows, so a warm round's verify stage does strictly less
lowering work than a cold one.

Row identity is the raw factor/annotation bytes of the config row (the
same identity :meth:`ConfigBatch.row_ids` hashes for dedup) — no string
keys, no config materialization.  The cache is bounded (FIFO over
spaces, like :class:`~repro.features.cache.FeatureRowCache`) and
registers clear + capacity hooks with :mod:`repro.cache`, so the
service/serve layers can drop or re-size it between jobs.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass, field

import numpy as np

from repro.cache import register_bounded
from repro.schedule.batch import CandidateBatch, ConfigBatch, lower_batch
from repro.schedule.space import ScheduleConfig, ScheduleSpace

#: Maximum cached rows across all spaces.
DEFAULT_CAPACITY = 1 << 16


def _row_keys(configs: ConfigBatch) -> list[bytes]:
    """Per-row identity bytes (hashable; ``row_ids`` void scalars are not)."""
    ids = configs.row_ids()
    width = ids.dtype.itemsize
    buf = ids.tobytes()
    return [buf[i * width : (i + 1) * width] for i in range(len(configs))]


@dataclass
class _SpaceArena:
    """All cached rows of one space: a growing batch + key -> row index."""

    batch: CandidateBatch | None = None
    index: dict[bytes, int] = field(default_factory=dict)


class LoweredRowCache:
    """Bounded (space, config row) -> lowered-row store, FIFO eviction."""

    def __init__(self, capacity: int = DEFAULT_CAPACITY) -> None:
        self.capacity = capacity
        self._spaces: OrderedDict[ScheduleSpace, _SpaceArena] = OrderedDict()
        self._count = 0
        self._lock = threading.Lock()
        self.hits = 0  # rows served from the arena
        self.misses = 0  # rows that had to be lowered
        self.evictions = 0  # rows dropped by capacity pressure

    def __len__(self) -> int:
        with self._lock:
            return self._count

    def clear(self) -> None:
        """Drop every cached row (hit/miss counters survive)."""
        with self._lock:
            self._spaces.clear()
            self._count = 0

    def set_capacity(self, capacity: int) -> None:
        """Re-bound the cache, evicting immediately if now over."""
        with self._lock:
            self.capacity = capacity
            self._evict()

    def stats(self) -> dict[str, int]:
        """Counters for memo-effectiveness checks (bench / CI / metrics)."""
        with self._lock:
            return {
                "rows": self._count,
                "spaces": len(self._spaces),
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
            }

    # ------------------------------------------------------------------
    def lower(
        self, space: ScheduleSpace, configs: ConfigBatch | list[ScheduleConfig]
    ) -> CandidateBatch:
        """Memoized :func:`~repro.schedule.batch.lower_batch`.

        Returns the same arrays ``lower_batch`` would (row for row, in
        request order); only rows never seen before are actually
        lowered.  Like ``lower_batch``, raises
        :class:`~repro.errors.ScheduleError` for rows outside the space
        — cached rows were validated when first lowered, so only the
        missing rows need validation.
        """
        if not isinstance(configs, ConfigBatch):
            configs = ConfigBatch.from_configs(space, configs)
        n = len(configs)
        if n == 0:
            return lower_batch(space, configs)
        keys = _row_keys(configs)
        with self._lock:
            arena = self._spaces.get(space)
            if arena is None:
                arena = self._spaces[space] = _SpaceArena()
            self._spaces.move_to_end(space)  # LRU order over spaces
            index = arena.index
            pos = np.fromiter(
                (index.get(k, -1) for k in keys), dtype=np.int64, count=n
            )
            miss = np.flatnonzero(pos < 0)
            self.hits += n - len(miss)
            self.misses += len(miss)
            if not len(miss):
                assert arena.batch is not None
                return arena.batch.take(pos)
        # Lower the misses outside the lock (the expensive part).
        seen_arena = arena
        lowered = lower_batch(space, configs.take(miss))
        with self._lock:
            # Re-resolve: a concurrent clear()/eviction may have dropped
            # (or dropped and recreated) the arena captured above, which
            # would invalidate the hit positions resolved against it.
            arena = self._spaces.get(space)
            if arena is not seen_arena:
                if len(miss) < n:
                    # Hit rows evaporated with the old arena; serve this
                    # request uncached rather than guess at stale data.
                    return self._rebuild(space, configs)
                if arena is None:
                    arena = self._spaces[space] = _SpaceArena()
                    self._spaces.move_to_end(space)
            base_len = len(arena.batch) if arena.batch is not None else 0
            fresh_rows: list[int] = []
            for j, i in enumerate(miss):
                key = keys[int(i)]
                at = arena.index.get(key)
                if at is None:  # first sighting (also dedups within the batch)
                    at = base_len + len(fresh_rows)
                    arena.index[key] = at
                    fresh_rows.append(j)
                pos[int(i)] = at
            if fresh_rows:
                insert = (
                    lowered
                    if len(fresh_rows) == len(miss)
                    else lowered.take(np.array(fresh_rows, dtype=np.int64))
                )
                arena.batch = (
                    insert
                    if arena.batch is None
                    else CandidateBatch.concat([arena.batch, insert])
                )
                self._count += len(fresh_rows)
            assert arena.batch is not None
            out = arena.batch.take(pos)
            self._evict()
        return out

    def _rebuild(self, space: ScheduleSpace, configs: ConfigBatch) -> CandidateBatch:
        """Fallback under concurrent clears: plain lowering, no caching."""
        return lower_batch(space, configs)

    def _evict(self) -> None:
        """FIFO-evict whole spaces (oldest first) until under capacity.

        Whole-space granularity keeps arena row indices stable — evicting
        single rows would invalidate every index behind them.
        """
        while self._count > self.capacity and self._spaces:
            _, arena = self._spaces.popitem(last=False)
            self._count -= len(arena.index)
            self.evictions += len(arena.index)


#: The process-wide instance the search policies share.
LOWERED_ROWS = LoweredRowCache()
register_bounded(
    "schedule.memo.LOWERED_ROWS",
    LOWERED_ROWS.clear,
    LOWERED_ROWS.set_capacity,
    stats=LOWERED_ROWS.stats,
)


def lower_batch_memo(
    space: ScheduleSpace, configs: ConfigBatch | list[ScheduleConfig]
) -> CandidateBatch:
    """Module-level convenience over :data:`LOWERED_ROWS`."""
    return LOWERED_ROWS.lower(space, configs)
