"""Schedule substrate: search space, sampling, mutation, lowering.

Implements the Ansor-style GPU schedule template the paper builds on
(Figure 3): each spatial loop is split five ways
``[block, thread, vthread, inner0, inner1]`` (the paper's I0..I4), each
reduction loop three ways ``[k0, k1, k2]``, with shared-memory caching
of inputs and unroll / vectorize annotations.  A TensorCore variant
constrains thread tiles to WMMA 16x16x16 fragments.

* :mod:`repro.schedule.space`  — :class:`ScheduleSpace` (the paper's θx)
  and :class:`ScheduleConfig` (one point of the space).
* :mod:`repro.schedule.sketch` — sketch-generation rules: workload ->
  space.
* :mod:`repro.schedule.sampler` — random initial schedules (batched).
* :mod:`repro.schedule.mutate` — GA mutation / crossover operators
  (batched, over factor matrices).
* :mod:`repro.schedule.lower`  — scalar lowering to
  :class:`LoweredProgram` (tile structure + dataflow blocks used by
  symbols, features and the device simulator).
* :mod:`repro.schedule.batch`  — the structure-of-arrays pipeline:
  :class:`ConfigBatch`, :func:`lower_batch` and :class:`CandidateBatch`
  (packed per-candidate arrays the whole search hot path runs on).
* :mod:`repro.schedule.memo`   — :class:`LoweredRowCache`, the
  persistent cross-round lowering memo (:func:`lower_batch_memo`).
"""

from repro.schedule.space import ScheduleConfig, ScheduleSpace, count_factorizations
from repro.schedule.sketch import generate_sketch
from repro.schedule.sampler import random_config, random_population, sample_factorization
from repro.schedule.mutate import crossover, mutate
from repro.schedule.lower import DataflowBlock, LoweredProgram, lower, lowered_count
from repro.schedule.batch import CandidateBatch, ConfigBatch, lower_batch
from repro.schedule.memo import LOWERED_ROWS, LoweredRowCache, lower_batch_memo

__all__ = [
    "ScheduleConfig",
    "ScheduleSpace",
    "count_factorizations",
    "generate_sketch",
    "random_config",
    "random_population",
    "sample_factorization",
    "mutate",
    "crossover",
    "lower",
    "lower_batch",
    "lower_batch_memo",
    "lowered_count",
    "LoweredProgram",
    "LoweredRowCache",
    "LOWERED_ROWS",
    "DataflowBlock",
    "ConfigBatch",
    "CandidateBatch",
]
