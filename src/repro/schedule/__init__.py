"""Schedule substrate: search space, sampling, mutation, lowering.

Implements the Ansor-style GPU schedule template the paper builds on
(Figure 3): each spatial loop is split five ways
``[block, thread, vthread, inner0, inner1]`` (the paper's I0..I4), each
reduction loop three ways ``[k0, k1, k2]``, with shared-memory caching
of inputs and unroll / vectorize annotations.  A TensorCore variant
constrains thread tiles to WMMA 16x16x16 fragments.

* :mod:`repro.schedule.space`  — :class:`ScheduleSpace` (the paper's θx)
  and :class:`ScheduleConfig` (one point of the space).
* :mod:`repro.schedule.sketch` — sketch-generation rules: workload ->
  space.
* :mod:`repro.schedule.sampler` — random initial schedules.
* :mod:`repro.schedule.mutate` — GA mutation / crossover operators.
* :mod:`repro.schedule.lower`  — lowering to :class:`LoweredProgram`
  (tile structure + dataflow blocks used by symbols, features and the
  device simulator).
"""

from repro.schedule.space import ScheduleConfig, ScheduleSpace, count_factorizations
from repro.schedule.sketch import generate_sketch
from repro.schedule.sampler import random_config, sample_factorization
from repro.schedule.mutate import crossover, mutate
from repro.schedule.lower import DataflowBlock, LoweredProgram, lower

__all__ = [
    "ScheduleConfig",
    "ScheduleSpace",
    "count_factorizations",
    "generate_sketch",
    "random_config",
    "sample_factorization",
    "mutate",
    "crossover",
    "lower",
    "LoweredProgram",
    "DataflowBlock",
]
