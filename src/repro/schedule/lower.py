"""Lowering: (workload, config) -> tile structure + dataflow blocks.

The :class:`LoweredProgram` is the analogue of TVM's lowered tensor IR:
it exposes everything downstream consumers need —

* the paper's hardware-aware symbols S1..S8 (:mod:`repro.core.symbols`),
* statement-level and temporal-dataflow features (:mod:`repro.features`),
* the device simulator's inputs (:mod:`repro.hardware.simulator`).

Tile-level conventions follow the paper's Figure 3: spatial factors are
``[f0 block, f1 thread, f2 vthread, f3, f4]`` (I0..I4) and reduction
factors ``[k0, k1, k2]``.  Registers per thread include the vthread
replication (vthreads own private registers in TVM), shared tiles span
the whole thread block, and global traffic counts one shared-tile load
per k0 iteration per block.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from functools import lru_cache

from repro.cache import register_lru
from repro.errors import LoweringError
from repro.ir.ops import Workload
from repro.obs import LOWERED
from repro.schedule.space import ScheduleConfig, ScheduleSpace


def note_lowered(n: int) -> None:
    """Record that ``n`` programs were lowered (memo-effectiveness stats).

    Backed by the ``repro_lowered_rows_total`` counter in the
    :mod:`repro.obs` registry (scalar cache misses plus batch-lowered
    rows — :mod:`repro.schedule.batch` reports its row counts here), so
    benchmarks, CI smoke checks, and ``GET /metrics`` all read the same
    monotonic total.
    """
    LOWERED.inc(n)


def lowered_count() -> int:
    """Programs lowered so far in this process (never resets)."""
    return int(LOWERED.value)

# Memory levels (paper Table 2): L0 = registers, L1 = shared, L2 = global.
L0, L1, L2 = 0, 1, 2
FRAGMENT = 3  # TensorCore fragment registers (shared -> fragment dataflow)


@dataclass(frozen=True)
class DataflowBlock:
    """One data-movement block of the multi-tiling pattern (paper Fig. 4).

    Attributes are raw quantities; :mod:`repro.features.dataflow` turns
    them into the 23-dimensional embedding vectors.
    """

    kind: str  # init | load | compute | store | stream | fragment
    src_level: int
    dst_level: int
    tensor: str
    traffic_elems: float  # total elements moved across the boundary
    alloc_elems: float  # destination allocation (per thread or per block)
    reuse: float  # average reads per element at the destination
    innermost_span: int  # contiguous span of the source access
    compute_ops: float  # FLOPs attributed to this block
    vector: int
    dtype_bytes: int


@dataclass(frozen=True)
class LoweredProgram:
    """Tile structure of one scheduled program.

    All element counts are in *elements* (multiply by ``dtype_bytes``
    for bytes).  ``reg_elems`` / ``smem_elems`` / ``threads`` /
    ``traffic_elems`` / ``grid`` / ``trans_span`` / ``flops`` /
    ``thread_compute`` correspond to symbols S1/S3/S4/S5/S6/S7/S8/S2.
    """

    workload: Workload
    config: ScheduleConfig
    tensorcore: bool
    # grid / block structure
    n_blocks: int
    threads_per_block: int
    vthreads: int
    # register level (L0)
    acc_regs: int
    reg_elems: int  # S1
    thread_compute: float  # S2
    # shared level (L1)
    smem_elems: int  # S3
    # global level (L2)
    traffic_elems: float  # S5 (loads + partial-sum stores)
    grid: int  # S6 (== n_blocks)
    trans_span: int  # S7 (worst innermost contiguous span)
    flops: float  # S8
    # annotations
    unroll: int
    vector: int
    splitk: int
    # dataflow blocks for PaCM features
    blocks: tuple[DataflowBlock, ...] = field(default_factory=tuple)

    @property
    def smem_bytes(self) -> int:
        """Shared memory per block in bytes."""
        return self.smem_elems * self.workload.dtype_bytes

    @property
    def traffic_bytes(self) -> float:
        """Global memory traffic in bytes."""
        return self.traffic_elems * self.workload.dtype_bytes

    @property
    def key(self) -> str:
        """Stable identity of (workload, schedule)."""
        return f"{self.workload.key}#{self.config.key}"


def lower(space: ScheduleSpace, config: ScheduleConfig) -> LoweredProgram:
    """Lower a schedule point; raises LoweringError on inconsistency."""
    return _lower_cached(space, config)


@lru_cache(maxsize=65536)
def _lower_cached(space: ScheduleSpace, config: ScheduleConfig) -> LoweredProgram:
    space.validate(config)
    note_lowered(1)
    if space.workload.is_tiled:
        return _lower_tiled(space, config)
    return _lower_flat(space, config)


register_lru("schedule.lower._lower_cached", _lower_cached)


def _lower_tiled(space: ScheduleSpace, config: ScheduleConfig) -> LoweredProgram:
    wl = space.workload
    tile = config.tile_map
    spatial_axes = [d.name for d in wl.spatial]
    reduction_axes = [d.name for d in wl.reduction]
    splitk = config.splitk

    f0 = {a: tile[a][0] for a in spatial_axes}
    f1 = {a: tile[a][1] for a in spatial_axes}
    f2 = {a: tile[a][2] for a in spatial_axes}
    thread_tile = {a: tile[a][2] * tile[a][3] * tile[a][4] for a in spatial_axes}
    block_tile = {a: tile[a][1] * thread_tile[a] for a in spatial_axes}

    n_blocks = math.prod(f0.values()) * splitk
    threads_per_block = math.prod(f1.values())
    vthreads = math.prod(f2.values())

    # reduction tiling: per-block reduction work is extent / splitk,
    # iterated k0 times over chunks of k1*k2.
    chunk = {r: tile[r][1] * tile[r][2] for r in reduction_axes}
    red_per_block = {
        r: max(1, math.ceil(wl.loop_extents()[r] / splitk)) for r in reduction_axes
    }

    # ----- L0: registers -----
    acc_regs = math.prod(thread_tile.values())
    input_regs: dict[str, int] = {}
    for read in wl.reads:
        touched = read.loops()
        regs = math.prod(thread_tile[a] for a in spatial_axes if a in touched)
        input_regs[read.tensor] = regs
    reg_elems = acc_regs + sum(input_regs.values())  # S1
    thread_compute = acc_regs * math.prod(red_per_block.values())  # S2

    # ----- L1: shared memory tiles -----
    shared_tile_map = dict(block_tile)
    shared_tile_map.update(chunk)
    block_points = math.prod(block_tile.values()) * math.prod(chunk.values())
    shared_tiles: dict[str, int] = {}
    shared_reuse: dict[str, float] = {}
    spans: list[int] = []
    for read in wl.reads:
        fp = read.footprint(shared_tile_map)
        shared_tiles[read.tensor] = fp
        shared_reuse[read.tensor] = block_points / max(1, fp)
        spans.append(read.innermost_span(shared_tile_map))
    smem_elems = sum(shared_tiles.values()) if space.use_shared else 0  # S3

    # ----- L2: global traffic -----
    traffic_tile_map = dict(block_tile)
    traffic_tile_map.update(red_per_block)
    input_traffic: dict[str, float] = {}
    for read in wl.reads:
        per_block = read.footprint(traffic_tile_map)
        input_traffic[read.tensor] = float(per_block) * n_blocks
    store_traffic = float(wl.output_elems) * splitk
    epilogue_reads = float(wl.output_elems) * sum(
        1 for op in wl.fused_ops if op in ("add", "residual")
    )
    traffic_elems = sum(input_traffic.values()) + store_traffic + epilogue_reads  # S5
    grid = n_blocks  # S6
    trans_span = min(spans) if spans else 1  # S7
    flops = wl.flops  # S8

    blocks = _tiled_dataflow_blocks(
        wl,
        config,
        space.tensorcore,
        acc_regs,
        input_regs,
        shared_tiles,
        shared_reuse,
        input_traffic,
        store_traffic,
        threads_per_block,
        spans,
        flops,
    )

    return LoweredProgram(
        workload=wl,
        config=config,
        tensorcore=space.tensorcore,
        n_blocks=n_blocks,
        threads_per_block=threads_per_block,
        vthreads=vthreads,
        acc_regs=acc_regs,
        reg_elems=reg_elems,
        thread_compute=thread_compute,
        smem_elems=smem_elems,
        traffic_elems=traffic_elems,
        grid=grid,
        trans_span=trans_span,
        flops=flops,
        unroll=config.unroll,
        vector=config.vector,
        splitk=splitk,
        blocks=tuple(blocks),
    )


def _tiled_dataflow_blocks(
    wl: Workload,
    config: ScheduleConfig,
    tensorcore: bool,
    acc_regs: int,
    input_regs: dict[str, int],
    shared_tiles: dict[str, int],
    shared_reuse: dict[str, float],
    input_traffic: dict[str, float],
    store_traffic: float,
    threads: int,
    spans: list[int],
    flops: float,
) -> list[DataflowBlock]:
    """The multi-tiling pattern of Figure 4 as a block sequence."""
    bytes_ = wl.dtype_bytes
    vthreads = math.prod(tile[2] for _, tile in config.tiles if len(tile) == 5)
    blocks: list[DataflowBlock] = [
        DataflowBlock(
            kind="init",
            src_level=L0,
            dst_level=L0,
            tensor="acc",
            traffic_elems=0.0,
            alloc_elems=float(acc_regs),
            # reuse slot carries the vthread register-replication factor
            reuse=float(vthreads),
            innermost_span=config.vector,
            compute_ops=0.0,
            vector=config.vector,
            dtype_bytes=bytes_,
        )
    ]
    for read, span in zip(wl.reads, spans):
        tile_elems = shared_tiles[read.tensor]
        traffic = input_traffic[read.tensor]
        reuse = shared_reuse[read.tensor]  # reads per element staged in L1
        blocks.append(
            DataflowBlock(
                kind="load",
                src_level=L2,
                dst_level=L1,
                tensor=read.tensor,
                traffic_elems=traffic,
                alloc_elems=float(tile_elems),
                reuse=float(reuse),
                innermost_span=span,
                compute_ops=0.0,
                vector=config.vector,
                dtype_bytes=bytes_,
            )
        )
    if tensorcore:
        # shared -> WMMA fragment staging (the extra dataflow the paper
        # adds to PaCM for MetaSchedule integration).
        frag_elems = sum(input_regs.values())
        blocks.append(
            DataflowBlock(
                kind="fragment",
                src_level=L1,
                dst_level=FRAGMENT,
                tensor="frag",
                traffic_elems=float(frag_elems) * threads,
                alloc_elems=float(frag_elems),
                reuse=1.0,
                innermost_span=16,
                compute_ops=0.0,
                vector=config.vector,
                dtype_bytes=bytes_,
            )
        )
    operand_regs = sum(input_regs.values())
    blocks.append(
        DataflowBlock(
            kind="compute",
            src_level=FRAGMENT if tensorcore else L1,
            dst_level=L0,
            tensor="acc",
            traffic_elems=float(operand_regs) * threads,
            alloc_elems=float(acc_regs),
            reuse=float(acc_regs) / max(1.0, operand_regs),
            # span slot carries the unroll pipelining depth
            innermost_span=max(1, config.unroll),
            compute_ops=flops,
            vector=config.vector,
            dtype_bytes=bytes_,
        )
    )
    blocks.append(
        DataflowBlock(
            kind="store",
            src_level=L0,
            dst_level=L2,
            tensor="out",
            traffic_elems=store_traffic,
            alloc_elems=float(acc_regs),
            reuse=1.0,
            innermost_span=config.vector,
            compute_ops=float(wl.output_elems) * len(wl.fused_ops),
            vector=config.vector,
            dtype_bytes=bytes_,
        )
    )
    return blocks


def _lower_flat(space: ScheduleSpace, config: ScheduleConfig) -> LoweredProgram:
    """Element-wise / pooling lowering: flat [grid, block] parallelization."""
    wl = space.workload
    tile = config.tile_map
    spatial_axes = [d.name for d in wl.spatial]
    reduction_axes = [d.name for d in wl.reduction]

    n_blocks = math.prod(tile[a][0] for a in spatial_axes)
    threads_per_block = math.prod(tile[a][1] for a in spatial_axes)
    if threads_per_block < 1:
        raise LoweringError(f"flat schedule for {wl.name} has no threads")
    red_points = math.prod(wl.loop_extents()[r] for r in reduction_axes) if reduction_axes else 1

    full = wl.loop_extents()
    input_elems = sum(r.footprint(full) for r in wl.reads)
    traffic = float(input_elems + wl.output_elems)
    last_axis = spatial_axes[-1]
    span = tile[last_axis][1] * config.vector

    blocks = (
        DataflowBlock(
            kind="stream",
            src_level=L2,
            dst_level=L2,
            tensor="x",
            traffic_elems=traffic,
            alloc_elems=float(config.vector),
            reuse=float(red_points),
            innermost_span=span,
            compute_ops=wl.flops,
            vector=config.vector,
            dtype_bytes=wl.dtype_bytes,
        ),
    )
    return LoweredProgram(
        workload=wl,
        config=config,
        tensorcore=False,
        n_blocks=n_blocks,
        threads_per_block=threads_per_block,
        vthreads=1,
        acc_regs=config.vector,
        reg_elems=config.vector * 2,
        thread_compute=float(red_points) * config.vector,
        smem_elems=0,
        traffic_elems=traffic,
        grid=n_blocks,
        trans_span=span,
        flops=wl.flops,
        unroll=config.unroll,
        vector=config.vector,
        splitk=1,
        blocks=blocks,
    )
