"""GA operators over schedules: mutation and crossover.

These are the ``SchMutation`` operators of the paper's Algorithm 2:
tiling-factor transformations of for-loops, plus annotation flips.  The
same operators serve both Ansor's evolutionary search and Pruner's LSE
(which differs only in the fitness function guiding selection).
"""

from __future__ import annotations

import numpy as np

from repro.schedule.sampler import sample_axis
from repro.schedule.space import ScheduleConfig, ScheduleSpace


def _swap_two_factors(
    rng: np.random.Generator, factors: tuple[int, ...]
) -> tuple[int, ...]:
    """Swap two positions of a factor tuple (preserves the product)."""
    if len(factors) < 2:
        return factors
    i, j = rng.choice(len(factors), size=2, replace=False)
    out = list(factors)
    out[i], out[j] = out[j], out[i]
    return tuple(out)


def _move_factor(
    rng: np.random.Generator, factors: tuple[int, ...]
) -> tuple[int, ...]:
    """Move a prime factor from one position to another (product-preserving)."""
    donors = [i for i, f in enumerate(factors) if f > 1]
    if not donors:
        return factors
    i = int(rng.choice(donors))
    j = int(rng.choice([p for p in range(len(factors)) if p != i]))
    f = factors[i]
    # smallest prime factor of f
    p = 2
    while f % p != 0:
        p += 1
    out = list(factors)
    out[i] //= p
    out[j] *= p
    return tuple(out)


def mutate(
    config: ScheduleConfig, space: ScheduleSpace, rng: np.random.Generator
) -> ScheduleConfig:
    """Return a mutated copy of ``config`` that is still inside ``space``.

    Mutation kinds (chosen at random):

    * resample one axis factorization from scratch,
    * swap two factors within an axis,
    * move a prime factor between tile levels of an axis,
    * flip the unroll / vectorize / splitK annotation.
    """
    kind = rng.random()
    splits = space.splits
    if kind < 0.45:  # resample one axis
        s = splits[int(rng.integers(len(splits)))]
        mutated = config.with_tile(s.axis, sample_axis(rng, space, s))
    elif kind < 0.65:  # swap factors
        s = splits[int(rng.integers(len(splits)))]
        mutated = config.with_tile(s.axis, _swap_two_factors(rng, config.factors(s.axis)))
    elif kind < 0.85:  # move a prime between levels
        s = splits[int(rng.integers(len(splits)))]
        mutated = config.with_tile(s.axis, _move_factor(rng, config.factors(s.axis)))
    else:  # annotation flip
        choice = rng.random()
        if choice < 0.5:
            mutated = config.with_annotations(unroll=int(rng.choice(space.unroll_options)))
        elif choice < 0.8:
            mutated = config.with_annotations(vector=int(rng.choice(space.vector_options)))
        else:
            mutated = config.with_annotations(splitk=int(rng.choice(space.splitk_options)))
    try:
        space.validate(mutated)
    except Exception:
        # TensorCore swaps/moves can break the fragment constraint;
        # fall back to a fresh resample of that axis.
        s = splits[int(rng.integers(len(splits)))]
        mutated = config.with_tile(s.axis, sample_axis(rng, space, s))
        space.validate(mutated)
    return mutated


def crossover(
    a: ScheduleConfig,
    b: ScheduleConfig,
    space: ScheduleSpace,
    rng: np.random.Generator,
) -> ScheduleConfig:
    """Uniform crossover: each axis / annotation inherited from either parent."""
    tile_map = {}
    for s in space.splits:
        parent = a if rng.random() < 0.5 else b
        tile_map[s.axis] = parent.factors(s.axis)
    child = ScheduleConfig.from_map(
        tile_map,
        unroll=(a if rng.random() < 0.5 else b).unroll,
        vector=(a if rng.random() < 0.5 else b).vector,
        splitk=(a if rng.random() < 0.5 else b).splitk,
    )
    space.validate(child)
    return child
