"""GA operators over schedules: mutation and crossover.

These are the ``SchMutation`` operators of the paper's Algorithm 2:
tiling-factor transformations of for-loops, plus annotation flips.  The
same operators serve both Ansor's evolutionary search and Pruner's LSE
(which differs only in the fitness function guiding selection).

Both operators are batched: they take and return
:class:`~repro.schedule.batch.ConfigBatch` factor tensors and apply
each mutation kind to its whole sub-group with numpy fancy indexing, so
a GA generation costs a handful of array ops instead of ``population``
Python calls.  Mutation kinds (chosen per candidate at random):

* resample one axis factorization from scratch,
* swap two factors within an axis,
* move a prime factor between tile levels of an axis,
* flip the unroll / vectorize / splitK annotation.

The scalar :func:`mutate` / :func:`crossover` remain as thin wrappers
delegating to the batch path with ``n == 1``.
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np

from repro.cache import register_lru
from repro.schedule.batch import ConfigBatch, space_plan, tensorcore_ok
from repro.schedule.sampler import sample_axis_batch
from repro.schedule.space import ScheduleConfig, ScheduleSpace


@lru_cache(maxsize=16384)
def _smallest_prime_factor(n: int) -> int:
    p = 2
    while n % p != 0:
        p += 1
    return p


register_lru("schedule.mutate._smallest_prime_factor", _smallest_prime_factor)


def _spf_array(values: np.ndarray) -> np.ndarray:
    """Smallest prime factor of each value (values must be > 1)."""
    out = np.empty_like(values)
    for v in np.unique(values):
        out[values == v] = _smallest_prime_factor(int(v))
    return out


def _move_factor(
    rng: np.random.Generator, factors: tuple[int, ...]
) -> tuple[int, ...]:
    """Move a prime factor between two positions (product-preserving).

    Scalar helper for neighbourhood-based baselines (Felix's local
    descent); the GA itself uses the batched move inside
    :func:`mutate_batch`.
    """
    if len(factors) < 2:
        return factors
    donors = [i for i, f in enumerate(factors) if f > 1]
    if not donors:
        return factors
    i = int(rng.choice(donors))
    j = int(rng.choice([p for p in range(len(factors)) if p != i]))
    p = _smallest_prime_factor(factors[i])
    out = list(factors)
    out[i] //= p
    out[j] *= p
    return tuple(out)


def mutate_batch(
    batch: ConfigBatch, space: ScheduleSpace, rng: np.random.Generator
) -> ConfigBatch:
    """Return a mutated copy of every candidate, all still inside ``space``.

    TensorCore candidates whose swap/move broke the fragment constraint
    are repaired like the scalar operator: revert to the original row
    and resample one random axis with the constraint-preserving sampler.
    """
    plan = space_plan(space)
    splits = space.splits
    n = len(batch)
    factors = batch.factors.copy()
    unroll = batch.unroll.copy()
    vector = batch.vector.copy()
    splitk = batch.splitk.copy()

    kind = rng.random(n)
    # One axis choice per candidate; annotation rows simply ignore theirs.
    axis_choice = rng.integers(0, plan.n_axes, size=n)

    # ----- resample one axis from scratch -----
    g0 = kind < 0.45
    for a in np.unique(axis_choice[g0]):
        rows = np.flatnonzero(g0 & (axis_choice == a))
        parts = splits[a].parts
        factors[rows, a, :parts] = sample_axis_batch(rng, space, splits[a], len(rows))

    # ----- swap two factors within an axis (product-preserving) -----
    g1 = (kind >= 0.45) & (kind < 0.65)
    for a in np.unique(axis_choice[g1]):
        parts = splits[a].parts
        if parts < 2:
            continue  # nothing to swap
        rows = np.flatnonzero(g1 & (axis_choice == a))
        i = rng.integers(0, parts, size=len(rows))
        j = (i + rng.integers(1, parts, size=len(rows))) % parts
        fi = factors[rows, a, i].copy()
        factors[rows, a, i] = factors[rows, a, j]
        factors[rows, a, j] = fi

    # ----- move a smallest-prime factor between levels -----
    g2 = (kind >= 0.65) & (kind < 0.85)
    for a in np.unique(axis_choice[g2]):
        parts = splits[a].parts
        if parts < 2:
            continue  # no destination level exists
        rows = np.flatnonzero(g2 & (axis_choice == a))
        sub = factors[rows, a, :parts]
        donors = sub > 1
        counts = donors.sum(axis=1)
        has = counts > 0
        if not has.any():
            continue
        rows = rows[has]
        sub = sub[has]
        pick = rng.integers(0, counts[has])  # which donor position (by rank)
        donor = np.argmax(donors[has].cumsum(axis=1) == (pick + 1)[:, None], axis=1)
        dest = rng.integers(0, parts - 1, size=len(rows))
        dest = dest + (dest >= donor)  # uniform over positions != donor
        p = _spf_array(sub[np.arange(len(rows)), donor])
        factors[rows, a, donor] //= p
        factors[rows, a, dest] *= p

    # ----- annotation flips -----
    g3 = np.flatnonzero(kind >= 0.85)
    if len(g3):
        choice = rng.random(len(g3))
        u_rows = g3[choice < 0.5]
        unroll[u_rows] = plan.unroll_options[
            rng.integers(0, len(plan.unroll_options), size=len(u_rows))
        ]
        v_rows = g3[(choice >= 0.5) & (choice < 0.8)]
        vector[v_rows] = plan.vector_options[
            rng.integers(0, len(plan.vector_options), size=len(v_rows))
        ]
        s_rows = g3[choice >= 0.8]
        splitk[s_rows] = plan.splitk_options[
            rng.integers(0, len(plan.splitk_options), size=len(s_rows))
        ]

    # ----- TensorCore repair (swap/move can break fragment alignment) -----
    if space.tensorcore:
        bad = np.flatnonzero(~tensorcore_ok(plan, factors))
        if len(bad):
            factors[bad] = batch.factors[bad]  # revert to the valid original
            repair_axis = rng.integers(0, plan.n_axes, size=len(bad))
            for a in np.unique(repair_axis):
                rows = bad[repair_axis == a]
                parts = splits[a].parts
                factors[rows, a, :parts] = sample_axis_batch(
                    rng, space, splits[a], len(rows)
                )

    return ConfigBatch(space, factors, unroll, vector, splitk)


def crossover_pairs(
    batch: ConfigBatch,
    left: np.ndarray,
    right: np.ndarray,
    space: ScheduleSpace,
    rng: np.random.Generator,
) -> ConfigBatch:
    """Uniform crossover of ``len(left)`` parent pairs drawn from ``batch``.

    Each axis / annotation is inherited wholesale from either parent, so
    children stay valid by construction (TensorCore constraints are
    per-axis).
    """
    plan = space_plan(space)
    left = np.asarray(left, dtype=np.int64)
    right = np.asarray(right, dtype=np.int64)
    m = len(left)
    from_left = rng.random((m, plan.n_axes)) < 0.5
    factors = np.where(
        from_left[:, :, None], batch.factors[left], batch.factors[right]
    )
    unroll = np.where(rng.random(m) < 0.5, batch.unroll[left], batch.unroll[right])
    vector = np.where(rng.random(m) < 0.5, batch.vector[left], batch.vector[right])
    splitk = np.where(rng.random(m) < 0.5, batch.splitk[left], batch.splitk[right])
    return ConfigBatch(space, factors, unroll, vector, splitk)


# ----------------------------------------------------------------------
# scalar wrappers (delegate to the batch path with n == 1)
# ----------------------------------------------------------------------
def mutate(
    config: ScheduleConfig, space: ScheduleSpace, rng: np.random.Generator
) -> ScheduleConfig:
    """Return a mutated copy of ``config`` that is still inside ``space``."""
    return mutate_batch(ConfigBatch.from_configs(space, [config]), space, rng).config(0)


def crossover(
    a: ScheduleConfig,
    b: ScheduleConfig,
    space: ScheduleSpace,
    rng: np.random.Generator,
) -> ScheduleConfig:
    """Uniform crossover: each axis / annotation inherited from either parent."""
    parents = ConfigBatch.from_configs(space, [a, b])
    return crossover_pairs(
        parents, np.array([0]), np.array([1]), space, rng
    ).config(0)
