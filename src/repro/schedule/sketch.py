"""Sketch generation rules: workload -> schedule space.

Mirrors Ansor's rule-based template generation (paper Figure 3, applied
to DAG stages in reverse topological order):

* **multi-level tiling** for reducible anchors (matmul / conv /
  depthwise / transpose-conv): 5-way spatial and 3-way reduction
  splits, shared-memory caching of inputs, unroll and vectorize menus;
* **TensorCore tiling** for half-precision matmuls: same structure with
  WMMA 16x16x16 fragment constraints and a splitK menu (the paper adds
  a TensorCore symbol to LSE and a shared->fragment dataflow to PaCM);
* **flat parallelization** for element-wise / pooling workloads (no
  tiling; the paper zero-pads their dataflow features).
"""

from __future__ import annotations

from repro.errors import ScheduleError
from repro.ir.ops import Workload
from repro.schedule.space import (
    REDUCTION_PARTS,
    SPATIAL_PARTS,
    SPLITK_OPTIONS,
    WMMA,
    AxisSplit,
    ScheduleSpace,
)


def generate_sketch(
    workload: Workload,
    tensorcore: bool = False,
    allow_splitk: bool = False,
) -> ScheduleSpace:
    """Generate the schedule space for a workload.

    Parameters
    ----------
    workload:
        The fused subgraph to be tuned.
    tensorcore:
        Request the TensorCore (WMMA) template; requires a
        half-precision matmul whose matrix dims are multiples of 16.
    allow_splitk:
        Expose splitK factors in the space (used by the MetaSchedule /
        library-surrogate templates).
    """
    if tensorcore:
        if not workload.tensorcore_eligible:
            raise ScheduleError(
                f"workload {workload.name!r} is not TensorCore eligible "
                f"(need float16 matmul)"
            )
        return _tensorcore_sketch(workload, allow_splitk)
    if workload.is_tiled:
        return _tiled_sketch(workload, allow_splitk)
    return _flat_sketch(workload)


def _tiled_sketch(workload: Workload, allow_splitk: bool) -> ScheduleSpace:
    spatial = tuple(
        AxisSplit(d.name, d.extent, SPATIAL_PARTS) for d in workload.spatial
    )
    reduction = tuple(
        AxisSplit(d.name, d.extent, REDUCTION_PARTS) for d in workload.reduction
    )
    return ScheduleSpace(
        workload=workload,
        spatial_splits=spatial,
        reduction_splits=reduction,
        splitk_options=SPLITK_OPTIONS if allow_splitk else (1,),
        use_shared=True,
    )


def _tensorcore_sketch(workload: Workload, allow_splitk: bool) -> ScheduleSpace:
    # The two matrix dims must be divisible by the WMMA edge; the batch
    # dim (if any) is tiled freely.
    matrix_dims = workload.spatial[-2:]
    for d in matrix_dims:
        if d.extent % WMMA != 0:
            raise ScheduleError(
                f"tensorcore sketch: dim {d.name!r} extent {d.extent} "
                f"is not a multiple of {WMMA}"
            )
    k = workload.reduction[0]
    if k.extent % WMMA != 0:
        raise ScheduleError(
            f"tensorcore sketch: reduction extent {k.extent} is not a "
            f"multiple of {WMMA}"
        )
    spatial = tuple(
        AxisSplit(d.name, d.extent, SPATIAL_PARTS) for d in workload.spatial
    )
    reduction = tuple(
        AxisSplit(d.name, d.extent, REDUCTION_PARTS) for d in workload.reduction
    )
    return ScheduleSpace(
        workload=workload,
        spatial_splits=spatial,
        reduction_splits=reduction,
        splitk_options=SPLITK_OPTIONS if allow_splitk else (1,),
        use_shared=True,
        tensorcore=True,
    )


def _flat_sketch(workload: Workload) -> ScheduleSpace:
    # Element-wise / pooling: flatten output space and split it
    # [grid, block] with a vectorization menu; reductions (pool windows)
    # stay serial.
    spatial = tuple(AxisSplit(d.name, d.extent, 2) for d in workload.spatial)
    reduction = tuple(AxisSplit(d.name, d.extent, 1) for d in workload.reduction)
    return ScheduleSpace(
        workload=workload,
        spatial_splits=spatial,
        reduction_splits=reduction,
        unroll_options=(0, 16),
        use_shared=False,
    )
