"""Structure-of-arrays candidate batches (the batched hot path).

The draft stage evaluates thousands of schedules per GA generation and
the verify stage features/scores hundreds more; doing that one Python
object at a time dominates tuning wall-clock.  This module packs
candidates into numpy arrays once and keeps every downstream consumer
(symbols, penalties, features, cost models, search policies) on dense
array math:

* :class:`ConfigBatch` — N schedule configs as a factor tensor
  ``(N, n_axes, MAX_PARTS)`` plus annotation vectors.  The GA operators
  (:mod:`repro.schedule.sampler`, :mod:`repro.schedule.mutate`) produce
  and consume these directly.
* :func:`lower_batch` — vectorized lowering: one :class:`CandidateBatch`
  with packed arrays for threads / grid / smem / registers / traffic /
  flops plus per-dataflow-block arrays, mirroring
  :func:`repro.schedule.lower.lower` field for field.
* :meth:`CandidateBatch.from_programs` — packs already-lowered
  :class:`~repro.schedule.lower.LoweredProgram` objects (possibly from
  *different* workloads, e.g. cost-model training data) into the same
  array layout, so the scalar entry points everywhere else are thin
  wrappers over the batch implementations.

The scalar :func:`~repro.schedule.lower.lower` keeps its independent
implementation on purpose: it is the reference the equivalence suite
(``tests/test_batch_equivalence.py``) checks ``lower_batch`` against,
and the materializer for the few candidates that actually get measured.
"""

from __future__ import annotations

import math
import os
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from functools import lru_cache

import numpy as np

from repro.cache import register_lru
from repro.errors import ScheduleError
from repro.ir.ops import Workload
from repro.schedule.lower import (
    FRAGMENT,
    L0,
    L1,
    L2,
    LoweredProgram,
    lower,
    note_lowered,
)
from repro.schedule.space import WMMA, WMMA_LANE, ScheduleConfig, ScheduleSpace

#: Widest per-axis factor tuple (5-way spatial splits); narrower axes are
#: padded with 1s so products over the full width are exact.
MAX_PARTS = 5

#: Canonical operator-class order for one-hot features.
TAG_ORDER = ("matmul", "conv2d", "depthwise", "conv2d_transpose", "pool", "elementwise")

#: Dataflow-block kind codes, in the one-hot order of
#: :mod:`repro.features.dataflow` (init/load/fragment/compute/store/stream).
BLOCK_KINDS = ("init", "load", "fragment", "compute", "store", "stream")
BK_INIT, BK_LOAD, BK_FRAGMENT, BK_COMPUTE, BK_STORE, BK_STREAM = range(6)
_KIND_CODE = {name: code for code, name in enumerate(BLOCK_KINDS)}

_I64 = np.int64
_F64 = np.float64


# ----------------------------------------------------------------------
# static per-space layout
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ReadPlan:
    """Vectorization plan for one input access pattern.

    ``dims`` holds, per tensor index dimension, the ``(axis positions,
    coefficients)`` arrays of its linear terms, so a footprint over any
    per-axis tile matrix ``T (N, A)`` is a handful of gathers and sums.
    """

    tensor: str
    reg_mask: np.ndarray  # (n_spatial,) bool — spatial axes this read touches
    dims: tuple[tuple[np.ndarray, np.ndarray], ...]

    def spans(self, tiles: np.ndarray) -> np.ndarray:
        """Per-dimension extents over tiles: shape ``(n_dims, N)``."""
        out = np.empty((len(self.dims), tiles.shape[0]), dtype=_I64)
        for d, (pos, coeff) in enumerate(self.dims):
            out[d] = 1 + ((tiles[:, pos] - 1) * coeff).sum(axis=1)
        return out

    def footprint(self, tiles: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """``(footprint, innermost span)`` arrays over a tile matrix."""
        spans = self.spans(tiles)
        if not len(self.dims):
            ones = np.ones(tiles.shape[0], dtype=_I64)
            return ones, ones
        return spans.prod(axis=0), spans[-1]


@dataclass(frozen=True)
class SpacePlan:
    """Precomputed static layout of one schedule space."""

    space: ScheduleSpace
    axes: tuple[str, ...]  # split order: spatial first, then reduction
    parts: np.ndarray  # (A,) factor-count per axis
    extents: np.ndarray  # (A,)
    n_spatial: int
    sorted_axis_order: np.ndarray  # axis indices in config.tiles (name) order
    reads: tuple[ReadPlan, ...]
    unroll_options: np.ndarray
    vector_options: np.ndarray
    splitk_options: np.ndarray
    # TensorCore constraint targets (indices into ``axes``; empty if not TC)
    tc_matrix_axes: tuple[int, ...]
    tc_reduction_axis: int  # -1 when absent

    @property
    def n_axes(self) -> int:
        return len(self.axes)

    @property
    def workload(self) -> Workload:
        return self.space.workload


@lru_cache(maxsize=1024)
def space_plan(space: ScheduleSpace) -> SpacePlan:
    """Build (and memoize) the vectorization plan of a schedule space."""
    wl = space.workload
    splits = space.splits
    axes = tuple(s.axis for s in splits)
    pos = {name: i for i, name in enumerate(axes)}
    spatial_axes = [d.name for d in wl.spatial]
    n_spatial = len(space.spatial_splits)

    reads = []
    for read in wl.reads:
        touched = read.loops()
        reg_mask = np.array([a in touched for a in spatial_axes], dtype=bool)
        dims = tuple(
            (
                np.array([pos[name] for name, _ in dim if name in pos], dtype=_I64),
                np.array([c for name, c in dim if name in pos], dtype=_I64),
            )
            for dim in read.index
        )
        reads.append(ReadPlan(tensor=read.tensor, reg_mask=reg_mask, dims=dims))

    tc_matrix: tuple[int, ...] = ()
    tc_red = -1
    if space.tensorcore:
        tc_matrix = tuple(pos[s.axis] for s in space.spatial_splits[-2:])
        if space.reduction_splits:
            tc_red = pos[space.reduction_splits[0].axis]

    return SpacePlan(
        space=space,
        axes=axes,
        parts=np.array([s.parts for s in splits], dtype=_I64),
        extents=np.array([s.extent for s in splits], dtype=_I64),
        n_spatial=n_spatial,
        sorted_axis_order=np.argsort(np.array(axes, dtype=object), kind="stable"),
        reads=tuple(reads),
        unroll_options=np.array(space.unroll_options, dtype=_I64),
        vector_options=np.array(space.vector_options, dtype=_I64),
        splitk_options=np.array(space.splitk_options, dtype=_I64),
        tc_matrix_axes=tc_matrix,
        tc_reduction_axis=tc_red,
    )


register_lru("schedule.batch.space_plan", space_plan)


# ----------------------------------------------------------------------
# ConfigBatch: N configs as a factor tensor
# ----------------------------------------------------------------------
class ConfigBatch:
    """N schedule configurations of one space, structure-of-arrays.

    ``factors`` has shape ``(N, n_axes, MAX_PARTS)`` (axis order =
    ``space.splits``, unused part slots padded with 1) and ``unroll`` /
    ``vector`` / ``splitk`` are ``(N,)`` int vectors.  Materializing
    :class:`~repro.schedule.space.ScheduleConfig` objects is lazy and
    cached — the GA never needs them; only selected candidates do.
    """

    __slots__ = ("space", "factors", "unroll", "vector", "splitk", "_configs", "_keys")

    def __init__(
        self,
        space: ScheduleSpace,
        factors: np.ndarray,
        unroll: np.ndarray,
        vector: np.ndarray,
        splitk: np.ndarray,
    ) -> None:
        self.space = space
        self.factors = factors
        self.unroll = unroll
        self.vector = vector
        self.splitk = splitk
        self._configs: list[ScheduleConfig | None] = [None] * len(unroll)
        self._keys: list[str] | None = None

    # -- construction --------------------------------------------------
    @classmethod
    def from_configs(
        cls, space: ScheduleSpace, configs: list[ScheduleConfig]
    ) -> "ConfigBatch":
        """Pack config objects into arrays (validating factor counts)."""
        plan = space_plan(space)
        n = len(configs)
        factors = np.ones((n, plan.n_axes, MAX_PARTS), dtype=_I64)
        unroll = np.empty(n, dtype=_I64)
        vector = np.empty(n, dtype=_I64)
        splitk = np.empty(n, dtype=_I64)
        parts = plan.parts
        for i, cfg in enumerate(configs):
            tile_map = cfg.tile_map
            if set(tile_map) != set(plan.axes):
                raise ScheduleError(
                    f"config axes {sorted(tile_map)} do not match space axes "
                    f"{sorted(plan.axes)}"
                )
            for a, name in enumerate(plan.axes):
                f = tile_map[name]
                if len(f) != parts[a]:
                    raise ScheduleError(
                        f"axis {name!r}: expected {parts[a]} factors, got {len(f)}"
                    )
                factors[i, a, : len(f)] = f
            unroll[i] = cfg.unroll
            vector[i] = cfg.vector
            splitk[i] = cfg.splitk
        batch = cls(space, factors, unroll, vector, splitk)
        batch._configs = list(configs)
        return batch

    @classmethod
    def concat(cls, batches: list["ConfigBatch"]) -> "ConfigBatch":
        """Stack batches of the same space (order preserved)."""
        if not batches:
            raise ScheduleError("cannot concatenate zero batches")
        space = batches[0].space
        out = cls(
            space,
            np.concatenate([b.factors for b in batches]),
            np.concatenate([b.unroll for b in batches]),
            np.concatenate([b.vector for b in batches]),
            np.concatenate([b.splitk for b in batches]),
        )
        out._configs = [c for b in batches for c in b._configs]
        return out

    # -- views ---------------------------------------------------------
    def __len__(self) -> int:
        return len(self.unroll)

    def take(self, idx: np.ndarray) -> "ConfigBatch":
        """Subset (or reorder) by an index or boolean-mask array."""
        idx = np.asarray(idx)
        if idx.dtype == bool:
            idx = np.flatnonzero(idx)
        out = ConfigBatch(
            self.space,
            self.factors[idx],
            self.unroll[idx],
            self.vector[idx],
            self.splitk[idx],
        )
        out._configs = [self._configs[int(i)] for i in idx]
        return out

    def slice(self, start: int, stop: int) -> "ConfigBatch":
        """Contiguous view ``[start:stop)`` — no array copies (sharding)."""
        out = ConfigBatch(
            self.space,
            self.factors[start:stop],
            self.unroll[start:stop],
            self.vector[start:stop],
            self.splitk[start:stop],
        )
        out._configs = self._configs[start:stop]
        return out

    def row_ids(self) -> np.ndarray:
        """Opaque per-candidate identity values (for vectorized dedup)."""
        n = len(self)
        flat = np.concatenate(
            [
                self.factors.reshape(n, -1),
                self.unroll[:, None],
                self.vector[:, None],
                self.splitk[:, None],
            ],
            axis=1,
        )
        flat = np.ascontiguousarray(flat)
        return flat.view(np.dtype((np.void, flat.dtype.itemsize * flat.shape[1])))[:, 0]

    def unique(self) -> "ConfigBatch":
        """Deduplicate, keeping the first occurrence of each candidate."""
        _, first = np.unique(self.row_ids(), return_index=True)
        return self.take(np.sort(first))

    # -- materialization ----------------------------------------------
    def program(self, i: int) -> LoweredProgram:
        """Scalar-lower the i-th candidate (for the few that get measured)."""
        return lower(self.space, self.config(i))

    def config(self, i: int) -> ScheduleConfig:
        """Materialize the i-th :class:`ScheduleConfig` (cached)."""
        cached = self._configs[i]
        if cached is not None:
            return cached
        plan = space_plan(self.space)
        tile_map = {
            name: tuple(int(f) for f in self.factors[i, a, : plan.parts[a]])
            for a, name in enumerate(plan.axes)
        }
        cfg = ScheduleConfig.from_map(
            tile_map,
            unroll=int(self.unroll[i]),
            vector=int(self.vector[i]),
            splitk=int(self.splitk[i]),
        )
        self._configs[i] = cfg
        return cfg

    def configs(self) -> list[ScheduleConfig]:
        """Materialize every config (cached)."""
        return [self.config(i) for i in range(len(self))]

    def keys(self) -> list[str]:
        """Stable identity strings of every candidate (cached).

        Built straight from the factor arrays — format-identical to
        :attr:`ScheduleConfig.key` but without materializing config
        objects for the whole batch.
        """
        if self._keys is None:
            plan = space_plan(self.space)
            layout = [
                (plan.axes[a], int(a), int(plan.parts[a]))
                for a in plan.sorted_axis_order
            ]
            keys = []
            for i in range(len(self)):
                tiles = ";".join(
                    f"{name}:{'x'.join(map(str, self.factors[i, a, :parts]))}"
                    for name, a, parts in layout
                )
                keys.append(
                    f"{tiles}|u{self.unroll[i]}|v{self.vector[i]}|s{self.splitk[i]}"
                )
            self._keys = keys
        return self._keys


def validate_batch(space: ScheduleSpace, batch: ConfigBatch) -> None:
    """Vectorized :meth:`ScheduleSpace.validate` over a whole batch."""
    plan = space_plan(space)
    if (batch.factors < 1).any():
        raise ScheduleError("factors must be >= 1")
    prods = batch.factors.prod(axis=2)
    bad = prods != plan.extents[None, :]
    if bad.any():
        i, a = np.argwhere(bad)[0]
        raise ScheduleError(
            f"axis {plan.axes[a]!r}: prod{tuple(batch.factors[i, a])} != "
            f"extent {plan.extents[a]}"
        )
    for name, values, options in (
        ("unroll", batch.unroll, plan.unroll_options),
        ("vector", batch.vector, plan.vector_options),
        ("splitk", batch.splitk, plan.splitk_options),
    ):
        ok = np.isin(values, options)
        if not ok.all():
            bad_value = values[~ok][0]
            raise ScheduleError(f"{name} {bad_value} not in {tuple(options)}")
    if space.tensorcore:
        bad = ~tensorcore_ok(plan, batch.factors)
        if bad.any():
            raise ScheduleError(
                "tensorcore: thread tile / reduction chunk violates the "
                f"WMMA fragment constraint for candidate {int(np.flatnonzero(bad)[0])}"
            )


def tensorcore_ok(plan: SpacePlan, factors: np.ndarray) -> np.ndarray:
    """Rows whose factors satisfy the WMMA fragment constraints."""
    ok = np.ones(factors.shape[0], dtype=bool)
    for a in plan.tc_matrix_axes:
        thread_tile = factors[:, a, 2] * factors[:, a, 3] * factors[:, a, 4]
        ok &= thread_tile % WMMA_LANE == 0
    if plan.tc_reduction_axis >= 0:
        a = plan.tc_reduction_axis
        chunk = factors[:, a, 1] * factors[:, a, 2]
        ok &= chunk % WMMA == 0
    return ok


# ----------------------------------------------------------------------
# CandidateBatch: lowered programs, structure-of-arrays
# ----------------------------------------------------------------------
@dataclass
class BlockArrays:
    """Dataflow blocks of a batch, packed column-wise.

    ``kind`` / ``src`` / ``dst`` are ``(N, B)`` int arrays (``kind ==
    -1`` marks padding past a program's real blocks); the float arrays
    carry the per-block quantities of
    :class:`~repro.schedule.lower.DataflowBlock`.
    """

    kind: np.ndarray  # (N, B) codes into BLOCK_KINDS, -1 = padding
    src: np.ndarray  # (N, B)
    dst: np.ndarray  # (N, B)
    traffic: np.ndarray  # (N, B) elements
    alloc: np.ndarray  # (N, B) elements
    reuse: np.ndarray  # (N, B)
    span: np.ndarray  # (N, B)
    compute: np.ndarray  # (N, B) FLOPs
    vector: np.ndarray  # (N, B)
    dtype_bytes: np.ndarray  # (N, B)


@dataclass
class CandidateBatch:
    """N lowered candidates as packed arrays (the SoA of the pipeline).

    Field names mirror :class:`~repro.schedule.lower.LoweredProgram`
    (``threads`` ~ ``threads_per_block``, ``grid`` ~ ``grid``, ...); all
    per-candidate quantities are ``(N,)`` arrays.  Built either by
    :func:`lower_batch` (vectorized, from a :class:`ConfigBatch`) or by
    :meth:`from_programs` (packing existing scalar programs — possibly
    of mixed workloads, e.g. cost-model training data).
    """

    configs: ConfigBatch | None  # present on the lower_batch path
    programs: list[LoweredProgram] | None  # present on the from_programs path
    tensorcore: np.ndarray  # (N,) bool
    # grid / block structure
    n_blocks: np.ndarray
    threads: np.ndarray
    vthreads: np.ndarray
    # registers (L0)
    acc_regs: np.ndarray
    reg_elems: np.ndarray  # S1
    thread_compute: np.ndarray  # S2 (float)
    # shared (L1) / global (L2)
    smem_elems: np.ndarray  # S3
    traffic_elems: np.ndarray  # S5 (float)
    grid: np.ndarray  # S6
    trans_span: np.ndarray  # S7
    flops: np.ndarray  # S8 (float)
    tc_align: np.ndarray  # S9 (float)
    # annotations
    unroll: np.ndarray
    vector: np.ndarray
    splitk: np.ndarray
    # workload-level per-row values (constant on the lower_batch path)
    dtype_bytes: np.ndarray
    output_elems: np.ndarray
    arith_intensity: np.ndarray
    n_fused: np.ndarray
    n_reduction: np.ndarray
    tag_code: np.ndarray  # index into TAG_ORDER
    # dataflow blocks
    blocks: BlockArrays

    def __len__(self) -> int:
        return len(self.threads)

    @property
    def smem_bytes(self) -> np.ndarray:
        """Shared memory per block in bytes, per candidate."""
        return self.smem_elems * self.dtype_bytes

    def keys(self) -> list[str]:
        """Per-candidate schedule-config identity strings."""
        if self.configs is not None:
            return self.configs.keys()
        assert self.programs is not None
        return [p.config.key for p in self.programs]

    def program(self, i: int) -> LoweredProgram:
        """Materialize one candidate as a scalar :class:`LoweredProgram`."""
        if self.programs is not None:
            return self.programs[i]
        assert self.configs is not None
        return lower(self.configs.space, self.configs.config(i))

    def take(self, idx: np.ndarray) -> "CandidateBatch":
        """Subset (or reorder) every array by an index/mask array."""
        idx = np.asarray(idx)
        if idx.dtype == bool:
            idx = np.flatnonzero(idx)
        b = self.blocks
        return CandidateBatch(
            configs=self.configs.take(idx) if self.configs is not None else None,
            programs=(
                [self.programs[int(i)] for i in idx]
                if self.programs is not None
                else None
            ),
            tensorcore=self.tensorcore[idx],
            n_blocks=self.n_blocks[idx],
            threads=self.threads[idx],
            vthreads=self.vthreads[idx],
            acc_regs=self.acc_regs[idx],
            reg_elems=self.reg_elems[idx],
            thread_compute=self.thread_compute[idx],
            smem_elems=self.smem_elems[idx],
            traffic_elems=self.traffic_elems[idx],
            grid=self.grid[idx],
            trans_span=self.trans_span[idx],
            flops=self.flops[idx],
            tc_align=self.tc_align[idx],
            unroll=self.unroll[idx],
            vector=self.vector[idx],
            splitk=self.splitk[idx],
            dtype_bytes=self.dtype_bytes[idx],
            output_elems=self.output_elems[idx],
            arith_intensity=self.arith_intensity[idx],
            n_fused=self.n_fused[idx],
            n_reduction=self.n_reduction[idx],
            tag_code=self.tag_code[idx],
            blocks=BlockArrays(
                kind=b.kind[idx],
                src=b.src[idx],
                dst=b.dst[idx],
                traffic=b.traffic[idx],
                alloc=b.alloc[idx],
                reuse=b.reuse[idx],
                span=b.span[idx],
                compute=b.compute[idx],
                vector=b.vector[idx],
                dtype_bytes=b.dtype_bytes[idx],
            ),
        )

    # ------------------------------------------------------------------
    @classmethod
    def concat(cls, parts: list["CandidateBatch"]) -> "CandidateBatch":
        """Stack candidate batches, preserving order (shards, memo arenas).

        All parts must share an origin: either every part carries a
        :class:`ConfigBatch` (``lower_batch`` output, same space) or
        every part carries a program list (``from_programs`` output).
        Block arrays are padded to the widest part with the same fill
        values :meth:`from_programs` uses (``kind = -1``, zeros), so
        concatenation commutes with packing.
        """
        if not parts:
            raise ScheduleError("cannot concatenate zero candidate batches")
        if len(parts) == 1:
            return parts[0]
        if all(p.configs is not None for p in parts):
            configs = ConfigBatch.concat([p.configs for p in parts])
            programs = None
        elif all(p.programs is not None for p in parts):
            configs = None
            programs = [q for p in parts for q in p.programs]
        else:
            raise ScheduleError("cannot concatenate mixed-origin candidate batches")
        width = max(p.blocks.kind.shape[1] for p in parts)

        def cat_blocks(field: str, fill) -> np.ndarray:
            arrs = []
            for p in parts:
                a = getattr(p.blocks, field)
                if a.shape[1] < width:
                    pad = np.full(
                        (a.shape[0], width - a.shape[1]), fill, dtype=a.dtype
                    )
                    a = np.concatenate([a, pad], axis=1)
                arrs.append(a)
            return np.concatenate(arrs, axis=0)

        def cat(field: str) -> np.ndarray:
            return np.concatenate([getattr(p, field) for p in parts])

        return cls(
            configs=configs,
            programs=programs,
            tensorcore=cat("tensorcore"),
            n_blocks=cat("n_blocks"),
            threads=cat("threads"),
            vthreads=cat("vthreads"),
            acc_regs=cat("acc_regs"),
            reg_elems=cat("reg_elems"),
            thread_compute=cat("thread_compute"),
            smem_elems=cat("smem_elems"),
            traffic_elems=cat("traffic_elems"),
            grid=cat("grid"),
            trans_span=cat("trans_span"),
            flops=cat("flops"),
            tc_align=cat("tc_align"),
            unroll=cat("unroll"),
            vector=cat("vector"),
            splitk=cat("splitk"),
            dtype_bytes=cat("dtype_bytes"),
            output_elems=cat("output_elems"),
            arith_intensity=cat("arith_intensity"),
            n_fused=cat("n_fused"),
            n_reduction=cat("n_reduction"),
            tag_code=cat("tag_code"),
            blocks=BlockArrays(
                kind=cat_blocks("kind", -1),
                src=cat_blocks("src", 0),
                dst=cat_blocks("dst", 0),
                traffic=cat_blocks("traffic", 0.0),
                alloc=cat_blocks("alloc", 0.0),
                reuse=cat_blocks("reuse", 0.0),
                span=cat_blocks("span", 0),
                compute=cat_blocks("compute", 0.0),
                vector=cat_blocks("vector", 0),
                dtype_bytes=cat_blocks("dtype_bytes", 0),
            ),
        )

    @classmethod
    def from_programs(cls, progs: list[LoweredProgram]) -> "CandidateBatch":
        """Pack scalar programs (mixed workloads allowed) into arrays."""
        n = len(progs)
        max_blocks = max((len(p.blocks) for p in progs), default=0)
        blocks = BlockArrays(
            kind=np.full((n, max_blocks), -1, dtype=_I64),
            src=np.zeros((n, max_blocks), dtype=_I64),
            dst=np.zeros((n, max_blocks), dtype=_I64),
            traffic=np.zeros((n, max_blocks), dtype=_F64),
            alloc=np.zeros((n, max_blocks), dtype=_F64),
            reuse=np.zeros((n, max_blocks), dtype=_F64),
            span=np.zeros((n, max_blocks), dtype=_I64),
            compute=np.zeros((n, max_blocks), dtype=_F64),
            vector=np.zeros((n, max_blocks), dtype=_I64),
            dtype_bytes=np.zeros((n, max_blocks), dtype=_I64),
        )
        for i, p in enumerate(progs):
            for b, blk in enumerate(p.blocks):
                blocks.kind[i, b] = _KIND_CODE[blk.kind]
                blocks.src[i, b] = blk.src_level
                blocks.dst[i, b] = blk.dst_level
                blocks.traffic[i, b] = blk.traffic_elems
                blocks.alloc[i, b] = blk.alloc_elems
                blocks.reuse[i, b] = blk.reuse
                blocks.span[i, b] = blk.innermost_span
                blocks.compute[i, b] = blk.compute_ops
                blocks.vector[i, b] = blk.vector
                blocks.dtype_bytes[i, b] = blk.dtype_bytes
        return cls(
            configs=None,
            programs=list(progs),
            tensorcore=np.array([p.tensorcore for p in progs], dtype=bool),
            n_blocks=np.array([p.n_blocks for p in progs], dtype=_I64),
            threads=np.array([p.threads_per_block for p in progs], dtype=_I64),
            vthreads=np.array([p.vthreads for p in progs], dtype=_I64),
            acc_regs=np.array([p.acc_regs for p in progs], dtype=_I64),
            reg_elems=np.array([p.reg_elems for p in progs], dtype=_I64),
            thread_compute=np.array([p.thread_compute for p in progs], dtype=_F64),
            smem_elems=np.array([p.smem_elems for p in progs], dtype=_I64),
            traffic_elems=np.array([p.traffic_elems for p in progs], dtype=_F64),
            grid=np.array([p.grid for p in progs], dtype=_I64),
            trans_span=np.array([p.trans_span for p in progs], dtype=_I64),
            flops=np.array([p.flops for p in progs], dtype=_F64),
            tc_align=np.array([_tc_align_scalar(p) for p in progs], dtype=_F64),
            unroll=np.array([p.unroll for p in progs], dtype=_I64),
            vector=np.array([p.vector for p in progs], dtype=_I64),
            splitk=np.array([p.splitk for p in progs], dtype=_I64),
            dtype_bytes=np.array([p.workload.dtype_bytes for p in progs], dtype=_I64),
            output_elems=np.array([p.workload.output_elems for p in progs], dtype=_I64),
            arith_intensity=np.array(
                [p.workload.arithmetic_intensity() for p in progs], dtype=_F64
            ),
            n_fused=np.array([len(p.workload.fused_ops) for p in progs], dtype=_I64),
            n_reduction=np.array([len(p.workload.reduction) for p in progs], dtype=_I64),
            tag_code=np.array(
                [TAG_ORDER.index(p.workload.tag) for p in progs], dtype=_I64
            ),
            blocks=blocks,
        )


def _tc_align_scalar(prog: LoweredProgram) -> float:
    """S9 fragment alignment of one program (mirror of core.symbols)."""
    if not prog.tensorcore:
        return 1.0
    spatial = [d.name for d in prog.workload.spatial][-2:]
    tile = prog.config.tile_map
    align = 1.0
    for axis in spatial:
        f = tile[axis]
        thread_tile = f[2] * f[3] * f[4]
        waves = -(-thread_tile // WMMA_LANE)
        align *= thread_tile / (waves * WMMA_LANE)
    return align


# ----------------------------------------------------------------------
# vectorized lowering
# ----------------------------------------------------------------------
#: Populations at or above this size are sharded across a thread pool;
#: every lowering op is per-row, so shard boundaries cannot change
#: values and shard-order concatenation keeps the result deterministic.
SHARD_MIN_ROWS = 16384
_SHARD_ROWS = 8192


def lower_batch(
    space: ScheduleSpace, configs: ConfigBatch | list[ScheduleConfig]
) -> CandidateBatch:
    """Lower a whole batch of schedule points in a few numpy ops.

    Bit-identical, field for field, to calling
    :func:`repro.schedule.lower.lower` per config (the equivalence suite
    asserts this); raises :class:`~repro.errors.ScheduleError` when a
    candidate lies outside the space, like the scalar path.

    Populations of at least :data:`SHARD_MIN_ROWS` rows are lowered in
    :data:`_SHARD_ROWS`-row shards on a thread pool (numpy releases the
    GIL inside array ops) and concatenated in shard order — same arrays,
    better wall-clock on many-core hosts.
    """
    if not isinstance(configs, ConfigBatch):
        configs = ConfigBatch.from_configs(space, configs)
    validate_batch(space, configs)
    impl = _lower_tiled_batch if space.workload.is_tiled else _lower_flat_batch
    n = len(configs)
    if n >= SHARD_MIN_ROWS:
        shards = [
            configs.slice(s, min(s + _SHARD_ROWS, n))
            for s in range(0, n, _SHARD_ROWS)
        ]
        workers = max(2, min(len(shards), (os.cpu_count() or 2) - 1))
        with ThreadPoolExecutor(max_workers=workers) as pool:
            parts = list(pool.map(lambda shard: impl(space, shard), shards))
        return CandidateBatch.concat(parts)
    return impl(space, configs)


def _lower_tiled_batch(space: ScheduleSpace, cb: ConfigBatch) -> CandidateBatch:
    plan = space_plan(space)
    wl = plan.workload
    n = len(cb)
    note_lowered(n)
    n_s = plan.n_spatial
    fs = cb.factors[:, :n_s, :]
    fr = cb.factors[:, n_s:, :]
    splitk = cb.splitk

    f0 = fs[:, :, 0].prod(axis=1)
    threads = fs[:, :, 1].prod(axis=1)
    vthreads = fs[:, :, 2].prod(axis=1)
    thread_tile = fs[:, :, 2] * fs[:, :, 3] * fs[:, :, 4]  # (N, n_s)
    block_tile = fs[:, :, 1] * thread_tile
    n_blocks = f0 * splitk

    chunk = fr[:, :, 1] * fr[:, :, 2]  # (N, n_r)
    red_extents = plan.extents[n_s:]
    red_per_block = np.maximum(
        1, np.ceil(red_extents[None, :] / splitk[:, None]).astype(_I64)
    )

    # ----- L0: registers -----
    acc_regs = thread_tile.prod(axis=1)
    input_regs = [
        np.where(r.reg_mask[None, :], thread_tile, 1).prod(axis=1) for r in plan.reads
    ]
    operand_regs = np.zeros(n, dtype=_I64)
    for regs in input_regs:
        operand_regs = operand_regs + regs
    reg_elems = acc_regs + operand_regs
    thread_compute = (acc_regs * red_per_block.prod(axis=1)).astype(_F64)

    # ----- L1: shared tiles -----
    shared_tiles = np.concatenate([block_tile, chunk], axis=1)  # (N, A)
    block_points = block_tile.prod(axis=1) * chunk.prod(axis=1)
    shared_fp, shared_span, shared_reuse = [], [], []
    for read in plan.reads:
        fp, span = read.footprint(shared_tiles)
        shared_fp.append(fp)
        shared_span.append(span)
        shared_reuse.append(block_points / np.maximum(1, fp))
    if space.use_shared and plan.reads:
        smem_elems = np.sum(shared_fp, axis=0)
    else:
        smem_elems = np.zeros(n, dtype=_I64)

    # ----- L2: global traffic -----
    traffic_tiles = np.concatenate([block_tile, red_per_block], axis=1)
    input_traffic = []
    traffic_elems = np.zeros(n, dtype=_F64)
    for read in plan.reads:
        fp, _ = read.footprint(traffic_tiles)
        t = fp.astype(_F64) * n_blocks
        input_traffic.append(t)
        traffic_elems = traffic_elems + t
    store_traffic = float(wl.output_elems) * splitk
    epilogue_reads = float(wl.output_elems) * sum(
        1 for op in wl.fused_ops if op in ("add", "residual")
    )
    traffic_elems = traffic_elems + store_traffic + epilogue_reads
    trans_span = (
        np.minimum.reduce(shared_span) if shared_span else np.ones(n, dtype=_I64)
    )

    # ----- S9 fragment alignment -----
    tc_align = np.ones(n, dtype=_F64)
    if space.tensorcore:
        for a in plan.tc_matrix_axes:
            tt = cb.factors[:, a, 2] * cb.factors[:, a, 3] * cb.factors[:, a, 4]
            waves = -(-tt // WMMA_LANE)
            tc_align = tc_align * (tt / (waves * WMMA_LANE))

    # ----- dataflow blocks (fixed layout: init, loads, [frag], compute, store)
    n_loads = len(plan.reads)
    layout = [BK_INIT] + [BK_LOAD] * n_loads
    src = [L0] + [L2] * n_loads
    dst = [L0] + [L1] * n_loads
    if space.tensorcore:
        layout += [BK_FRAGMENT]
        src += [L1]
        dst += [FRAGMENT]
    layout += [BK_COMPUTE, BK_STORE]
    src += [FRAGMENT if space.tensorcore else L1, L0]
    dst += [L0, L2]
    nb = len(layout)
    blocks = BlockArrays(
        kind=np.broadcast_to(np.array(layout, dtype=_I64), (n, nb)).copy(),
        src=np.broadcast_to(np.array(src, dtype=_I64), (n, nb)).copy(),
        dst=np.broadcast_to(np.array(dst, dtype=_I64), (n, nb)).copy(),
        traffic=np.zeros((n, nb), dtype=_F64),
        alloc=np.zeros((n, nb), dtype=_F64),
        reuse=np.zeros((n, nb), dtype=_F64),
        span=np.zeros((n, nb), dtype=_I64),
        compute=np.zeros((n, nb), dtype=_F64),
        vector=np.broadcast_to(cb.vector[:, None], (n, nb)).copy(),
        dtype_bytes=np.full((n, nb), wl.dtype_bytes, dtype=_I64),
    )
    # init
    blocks.alloc[:, 0] = acc_regs
    blocks.reuse[:, 0] = vthreads
    blocks.span[:, 0] = cb.vector
    # loads
    for t in range(n_loads):
        col = 1 + t
        blocks.traffic[:, col] = input_traffic[t]
        blocks.alloc[:, col] = shared_fp[t]
        blocks.reuse[:, col] = shared_reuse[t]
        blocks.span[:, col] = shared_span[t]
    col = 1 + n_loads
    if space.tensorcore:
        frag = operand_regs.astype(_F64)
        blocks.traffic[:, col] = frag * threads
        blocks.alloc[:, col] = frag
        blocks.reuse[:, col] = 1.0
        blocks.span[:, col] = 16
        col += 1
    # compute
    blocks.traffic[:, col] = operand_regs.astype(_F64) * threads
    blocks.alloc[:, col] = acc_regs
    blocks.reuse[:, col] = acc_regs.astype(_F64) / np.maximum(1.0, operand_regs)
    blocks.span[:, col] = np.maximum(1, cb.unroll)
    blocks.compute[:, col] = wl.flops
    # store
    col += 1
    blocks.traffic[:, col] = store_traffic
    blocks.alloc[:, col] = acc_regs
    blocks.reuse[:, col] = 1.0
    blocks.span[:, col] = cb.vector
    blocks.compute[:, col] = float(wl.output_elems) * len(wl.fused_ops)

    return CandidateBatch(
        configs=cb,
        programs=None,
        tensorcore=np.full(n, space.tensorcore, dtype=bool),
        n_blocks=n_blocks,
        threads=threads,
        vthreads=vthreads,
        acc_regs=acc_regs,
        reg_elems=reg_elems,
        thread_compute=thread_compute,
        smem_elems=smem_elems,
        traffic_elems=traffic_elems,
        grid=n_blocks,
        trans_span=trans_span,
        flops=np.full(n, wl.flops, dtype=_F64),
        tc_align=tc_align,
        unroll=cb.unroll,
        vector=cb.vector,
        splitk=splitk,
        dtype_bytes=np.full(n, wl.dtype_bytes, dtype=_I64),
        output_elems=np.full(n, wl.output_elems, dtype=_I64),
        arith_intensity=np.full(n, wl.arithmetic_intensity(), dtype=_F64),
        n_fused=np.full(n, len(wl.fused_ops), dtype=_I64),
        n_reduction=np.full(n, len(wl.reduction), dtype=_I64),
        tag_code=np.full(n, TAG_ORDER.index(wl.tag), dtype=_I64),
        blocks=blocks,
    )


def _lower_flat_batch(space: ScheduleSpace, cb: ConfigBatch) -> CandidateBatch:
    plan = space_plan(space)
    wl = plan.workload
    n = len(cb)
    note_lowered(n)
    n_s = plan.n_spatial
    fs = cb.factors[:, :n_s, :]

    n_blocks = fs[:, :, 0].prod(axis=1)
    threads = fs[:, :, 1].prod(axis=1)
    red_points = math.prod(d.extent for d in wl.reduction) if wl.reduction else 1

    full = wl.loop_extents()
    input_elems = sum(r.footprint(full) for r in wl.reads)
    traffic = float(input_elems + wl.output_elems)
    span = fs[:, n_s - 1, 1] * cb.vector

    blocks = BlockArrays(
        kind=np.full((n, 1), BK_STREAM, dtype=_I64),
        src=np.full((n, 1), L2, dtype=_I64),
        dst=np.full((n, 1), L2, dtype=_I64),
        traffic=np.full((n, 1), traffic, dtype=_F64),
        alloc=cb.vector[:, None].astype(_F64),
        reuse=np.full((n, 1), float(red_points), dtype=_F64),
        span=span[:, None],
        compute=np.full((n, 1), wl.flops, dtype=_F64),
        vector=cb.vector[:, None].copy(),
        dtype_bytes=np.full((n, 1), wl.dtype_bytes, dtype=_I64),
    )
    return CandidateBatch(
        configs=cb,
        programs=None,
        tensorcore=np.zeros(n, dtype=bool),
        n_blocks=n_blocks,
        threads=threads,
        vthreads=np.ones(n, dtype=_I64),
        acc_regs=cb.vector,
        reg_elems=cb.vector * 2,
        thread_compute=float(red_points) * cb.vector,
        smem_elems=np.zeros(n, dtype=_I64),
        traffic_elems=np.full(n, traffic, dtype=_F64),
        grid=n_blocks,
        trans_span=span,
        flops=np.full(n, wl.flops, dtype=_F64),
        tc_align=np.ones(n, dtype=_F64),
        unroll=cb.unroll,
        vector=cb.vector,
        splitk=np.ones(n, dtype=_I64),
        dtype_bytes=np.full(n, wl.dtype_bytes, dtype=_I64),
        output_elems=np.full(n, wl.output_elems, dtype=_I64),
        arith_intensity=np.full(n, wl.arithmetic_intensity(), dtype=_F64),
        n_fused=np.full(n, len(wl.fused_ops), dtype=_I64),
        n_reduction=np.full(n, len(wl.reduction), dtype=_I64),
        tag_code=np.full(n, TAG_ORDER.index(wl.tag), dtype=_I64),
        blocks=blocks,
    )
