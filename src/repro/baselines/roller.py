"""Roller baseline: rule-based rTile enumeration (Zhu et al., OSDI'22).

Roller skips learned cost models entirely: it enumerates *aligned*
rTiles (tile shapes that match the hardware's warp, transaction and
memory-bank granularities), scores them with an analytical micro-perf
model, and measures only a handful (the paper uses 50 trials per
subgraph).  It is very fast but "easily misses optimal solutions"
(paper Section 6.1, Table 6) because good-but-unaligned schedules are
outside its rule set and its model misses device-specific behaviour.
"""

from __future__ import annotations

import math
from dataclasses import dataclass


from repro.core.analyzer import SymbolBasedAnalyzer, is_launchable
from repro.hardware.device import DeviceSpec
from repro.hardware.measure import MeasureRunner
from repro.ir.ops import Workload
from repro.ir.partition import SubgraphTask
from repro.rng import make_rng
from repro.schedule.lower import LoweredProgram, lower
from repro.schedule.sampler import random_config
from repro.schedule.sketch import generate_sketch
from repro.timemodel import SimClock


def _is_power_of_two(n: int) -> bool:
    return n > 0 and (n & (n - 1)) == 0


def _aligned(prog: LoweredProgram, device: DeviceSpec) -> bool:
    """Roller's alignment rules: warp-aligned threads, pow2 tiles."""
    if prog.threads_per_block % device.warp_size != 0:
        return False
    if not 64 <= prog.threads_per_block <= 512:
        return False
    for _, factors in prog.config.tiles:
        if not all(_is_power_of_two(f) or f == prog.workload.loop_extents().get("", 0) for f in factors):
            # allow non-pow2 only when the axis extent itself is odd-sized
            if not all(f == 1 or _is_power_of_two(f) for f in factors[1:]):
                return False
    return True


@dataclass
class RollerResult:
    """Outcome of Roller on one subgraph set."""

    latency: float  # end-to-end weighted latency (seconds)
    per_task: dict[str, float]
    clock: SimClock


class RollerTuner:
    """Aligned-tile enumeration + analytical scoring + tiny measurement."""

    def __init__(
        self,
        device: DeviceSpec,
        trials: int = 50,
        enumeration: int = 2048,
        seed: int = 0,
    ) -> None:
        self.device = device
        self.trials = trials
        self.enumeration = enumeration
        self.seed = seed
        self.analyzer = SymbolBasedAnalyzer(device)

    # ------------------------------------------------------------------
    def tune_workload(
        self, workload: Workload, clock: SimClock | None = None
    ) -> tuple[float, SimClock]:
        """Tune one workload; returns (best latency, clock)."""
        clock = clock or SimClock()
        runner = MeasureRunner(self.device, clock=clock, rng=make_rng(self.seed))
        space = generate_sketch(workload)
        rng = make_rng((self.seed, workload.key).__str__().__hash__() & 0xFFFF)

        candidates: dict[str, LoweredProgram] = {}
        for _ in range(self.enumeration):
            prog = lower(space, random_config(space, rng))
            if is_launchable(prog, self.device) and _aligned(prog, self.device):
                candidates[prog.config.key] = prog
        pool = list(candidates.values())
        if not pool:  # fall back: drop alignment if rules match nothing
            pool = [
                lower(space, random_config(space, rng)) for _ in range(self.trials * 2)
            ]
            pool = [p for p in pool if is_launchable(p, self.device)]
        clock.charge_sa(len(pool))  # rule-model scoring cost
        scored = sorted(pool, key=self.analyzer.latency)
        top = scored[: self.trials]
        results = runner.measure(top)
        best = min(
            (r.latency for r in results if r.valid), default=math.inf
        )
        return best, clock

    def tune_subgraphs(self, subgraphs: list[SubgraphTask]) -> RollerResult:
        """Tune every tiled subgraph with ``trials`` measurements each."""
        clock = SimClock()
        per_task: dict[str, float] = {}
        total = 0.0
        for sub in subgraphs:
            if not sub.workload.is_tiled:
                continue
            best, _ = self.tune_workload(sub.workload, clock=clock)
            per_task[sub.workload.key] = best
            if math.isfinite(best):
                total += best * sub.weight
        return RollerResult(latency=total, per_task=per_task, clock=clock)
