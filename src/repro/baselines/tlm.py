"""TLM baseline: tensor language model as schedule generator (OSDI'24).

TLM pre-trains a generative model over schedule token sequences and
samples candidate programs directly, skipping most of the search.  We
model it as per-subgraph empirical distributions over tile factors,
estimated from strong schedules found offline: sampling is excellent on
subgraphs seen during pre-training and *impossible* on unseen ones —
"when we applied it to a model that didn't appear in the training
phase, it failed to tune" (paper Section 6.1, the X entries of Fig. 8).
"""

from __future__ import annotations

import math
from collections import defaultdict

import numpy as np

from repro.core.analyzer import SymbolBasedAnalyzer, is_launchable
from repro.errors import ReproError, TuningFailure
from repro.hardware.device import DeviceSpec
from repro.hardware.measure import MeasureRunner
from repro.ir.ops import Workload
from repro.ir.partition import SubgraphTask
from repro.rng import make_rng, rng_for
from repro.schedule.lower import lower
from repro.schedule.sampler import random_config
from repro.schedule.sketch import generate_sketch
from repro.schedule.space import ScheduleConfig
from repro.timemodel import SimClock


class TLMTuner:
    """Generative sampling from per-subgraph factor distributions."""

    def __init__(
        self,
        device: DeviceSpec,
        corpus_size: int = 1024,
        top_corpus: int = 64,
        seed: int = 0,
    ) -> None:
        self.device = device
        self.corpus_size = corpus_size
        self.top_corpus = top_corpus
        self.seed = seed
        self.analyzer = SymbolBasedAnalyzer(device)
        # workload key -> per-axis list of observed factor tuples
        self._distributions: dict[str, dict[str, list[tuple[int, ...]]]] = {}

    # ------------------------------------------------------------------
    def pretrain(self, corpus: list[SubgraphTask]) -> None:
        """'Language-model pre-training': learn factor distributions from
        strong schedules of the corpus subgraphs."""
        for sub in corpus:
            wl = sub.workload
            if not wl.is_tiled or wl.key in self._distributions:
                continue
            space = generate_sketch(wl)
            rng = rng_for("tlm-pretrain", wl.key)
            pool = []
            for _ in range(self.corpus_size):
                prog = lower(space, random_config(space, rng))
                if is_launchable(prog, self.device):
                    pool.append(prog)
            pool.sort(key=self.analyzer.latency)
            dist: dict[str, list[tuple[int, ...]]] = defaultdict(list)
            for prog in pool[: self.top_corpus]:
                for axis, factors in prog.config.tiles:
                    dist[axis].append(factors)
            self._distributions[wl.key] = dict(dist)

    def supports(self, workload: Workload) -> bool:
        """TLM can only generate schedules for pre-training subgraphs."""
        return workload.key in self._distributions

    # ------------------------------------------------------------------
    def _sample(self, workload: Workload, rng: np.random.Generator) -> ScheduleConfig:
        dist = self._distributions[workload.key]
        tile_map = {}
        for axis, choices in dist.items():
            tile_map[axis] = choices[int(rng.integers(len(choices)))]
        unroll = int(rng.choice((0, 16, 64, 512)))
        vector = int(rng.choice((1, 2, 4)))
        return ScheduleConfig.from_map(tile_map, unroll=unroll, vector=vector)

    def tune_workload(
        self, workload: Workload, trials: int = 50, clock: SimClock | None = None
    ) -> tuple[float, SimClock]:
        """Sample + measure; raises TuningFailure on unseen subgraphs."""
        if not self.supports(workload):
            raise TuningFailure(
                f"TLM was not pre-trained on subgraph {workload.name}"
            )
        clock = clock or SimClock()
        runner = MeasureRunner(self.device, clock=clock, rng=make_rng(self.seed))
        space = generate_sketch(workload)
        rng = make_rng(self.seed + 1)
        batch = []
        seen: set[str] = set()
        attempts = 0
        while len(batch) < trials and attempts < trials * 10:
            attempts += 1
            cfg = self._sample(workload, rng)
            if cfg.key in seen:
                continue
            try:
                prog = lower(space, cfg)
            except ReproError:  # unlowerable sample: skip, keep drawing
                continue
            if is_launchable(prog, self.device):
                seen.add(cfg.key)
                batch.append(prog)
        results = runner.measure(batch)
        best = min((r.latency for r in results if r.valid), default=math.inf)
        return best, clock

    def tune_subgraphs(
        self, subgraphs: list[SubgraphTask], trials_per_task: int = 50
    ) -> tuple[float, SimClock]:
        """End-to-end latency over tiled subgraphs (weighted)."""
        clock = SimClock()
        total = 0.0
        for sub in subgraphs:
            if not sub.workload.is_tiled:
                continue
            best, _ = self.tune_workload(sub.workload, trials_per_task, clock)
            if math.isfinite(best):
                total += best * sub.weight
        return total, clock
