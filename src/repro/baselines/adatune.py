"""Adatune baseline: adaptive early-terminated measurements (NeurIPS'20).

Adatune cuts tuning cost by statistically early-stopping costly hardware
measurements.  We model that trade-off directly: measurement run time
per trial is capped far lower than the default, at the price of noisier
latency estimates feeding the cost model.  Adatune predates automatic
sketch generation for some operators — the paper marks it failed (X) on
DCGAN because it "lacks support for ConvTranspose2d"; :meth:`supports`
encodes that limitation.
"""

from __future__ import annotations

import dataclasses

from repro.config import ONLINE_TRAIN, SearchConfig, TrainConfig
from repro.costmodel import GBDTModel
from repro.errors import TuningFailure
from repro.hardware.device import DeviceSpec
from repro.hardware.measure import MeasureRunner
from repro.ir.ops import Workload
from repro.ir.partition import SubgraphTask
from repro.rng import make_rng
from repro.search import AnsorPolicy, Tuner, make_tasks
from repro.search.tuner import TuneResult
from repro.timemodel import CostTable, SimClock


class AdatuneTuner:
    """Ansor-style search with early-stopped (noisy, cheap) measurement."""

    #: measurement noise after early termination (vs 1.5% default)
    NOISE_SIGMA = 0.06
    #: cap on per-trial run time (vs 0.6 s default)
    MAX_RUN = 0.15

    def __init__(
        self,
        device: DeviceSpec,
        search: SearchConfig | None = None,
        train: TrainConfig | None = None,
        seed: int = 0,
    ) -> None:
        self.device = device
        self.search = search or SearchConfig()
        self.train = train or ONLINE_TRAIN
        self.seed = seed

    @staticmethod
    def supports(workload: Workload) -> bool:
        """Adatune cannot tune transposed convolutions (paper Fig. 8)."""
        return workload.tag != "conv2d_transpose"

    def tune(self, subgraphs: list[SubgraphTask], rounds: int) -> TuneResult:
        """Tune the supported subgraphs; raises on unsupported ops."""
        for sub in subgraphs:
            if sub.workload.is_tiled and not self.supports(sub.workload):
                raise TuningFailure(
                    f"Adatune does not support {sub.workload.tag} "
                    f"({sub.workload.name})"
                )
        costs = dataclasses.replace(CostTable(), measure_max_run=self.MAX_RUN)
        clock = SimClock(costs)
        runner = MeasureRunner(
            self.device,
            clock=clock,
            noise_sigma=self.NOISE_SIGMA,
            rng=make_rng(self.seed),
        )
        tasks = make_tasks(subgraphs, self.device)
        model = GBDTModel()
        policies = {
            t.key: AnsorPolicy(t, model, search=self.search, clock=clock)
            for t in tasks
        }
        tuner = Tuner(
            tasks,
            policies,
            model,
            runner,
            clock,
            mode="online",
            train=self.train,
            rng=make_rng(self.seed + 1),
        )
        return tuner.tune(rounds)
