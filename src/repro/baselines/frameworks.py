"""Off-the-shelf inference-framework surrogates (paper Section 6.1/6.4).

Network latency under PyTorch / Triton / Torch-TensorRT, modelled per
the paper's own analysis of why each wins or loses:

* **PyTorch (cudaLib)** — dispatches each op to deeply-tuned cuDNN /
  cuBLAS kernels (splitK, Winograd available; high per-kernel quality)
  but executes element-wise epilogues as *separate* kernels (no cross-op
  fusion in eager mode) with a launch per op.
* **Triton (TorchInductor max-autotune)** — compiled and fused, tuned
  over a modest config set; no splitK or Winograd fast paths.
* **Torch-TensorRT** — library kernels plus graph-level fusion: the
  strongest baseline, as in Figure 9 ("TensorRT outperforms Pruner in
  some cases").
"""

from __future__ import annotations

import dataclasses
import math

from repro.api import elementwise_latency
from repro.errors import ReproError
from repro.hardware.device import DeviceSpec
from repro.hardware.library import LibrarySurrogate
from repro.ir.partition import SubgraphTask

_FRAMEWORKS = ("pytorch", "triton", "tensorrt")

# PyTorch eager per-op dispatch cost (python + dispatcher + cuDNN
# heuristic lookup), the dominant overhead for small-batch CNN graphs.
_EAGER_DISPATCH = 8.0e-6


def _surrogate(framework: str, device: DeviceSpec) -> LibrarySurrogate:
    if framework == "pytorch":
        return LibrarySurrogate(device, quality=0.92, samples=256, refine_rounds=2)
    if framework == "triton":
        return LibrarySurrogate(
            device,
            quality=1.0,
            samples=160,
            refine_rounds=1,
            allow_splitk=False,
            allow_winograd=False,
        )
    if framework == "tensorrt":
        return LibrarySurrogate(device, quality=0.88, samples=256, refine_rounds=2)
    raise ReproError(f"unknown framework {framework!r}; known: {_FRAMEWORKS}")


def framework_op_latency(
    framework: str,
    sub: SubgraphTask,
    device: DeviceSpec,
    lib: LibrarySurrogate | None = None,
    tensorcore: bool = False,
) -> float:
    """Latency of one fused subgraph under a framework."""
    lib = lib or _surrogate(framework, device)
    wl = sub.workload
    use_tc = tensorcore and wl.tensorcore_eligible and device.has_tensorcore
    if framework == "pytorch":
        # eager mode: anchor kernel without epilogues + one element-wise
        # kernel (2x output traffic + dispatch) per fused op, plus the
        # framework's own per-op dispatch overhead.
        anchor = dataclasses.replace(wl, fused_ops=())
        latency = lib.latency(anchor, tensorcore=use_tc) + _EAGER_DISPATCH
        epilogue_bytes = wl.output_elems * wl.dtype_bytes * 2
        per_epilogue = (
            epilogue_bytes / (device.peak_bw * 0.7)
            + device.launch_overhead
            + _EAGER_DISPATCH
        )
        return latency + len(wl.fused_ops) * per_epilogue
    return lib.latency(wl, tensorcore=use_tc)


def framework_latency(
    framework: str,
    subgraphs: list[SubgraphTask],
    device: DeviceSpec,
    tensorcore: bool = False,
) -> float:
    """End-to-end weighted network latency under a framework (seconds)."""
    lib = _surrogate(framework, device)
    total = 0.0
    for sub in subgraphs:
        if not sub.workload.is_tiled:
            continue
        lat = framework_op_latency(framework, sub, device, lib, tensorcore)
        if math.isfinite(lat):
            total += lat * sub.weight
    total += elementwise_latency(subgraphs, device)
    if framework == "pytorch":
        # eager-mode per-op dispatch overhead on the element-wise part
        n_elementwise = sum(
            s.weight for s in subgraphs if not s.workload.is_tiled
        )
        total += n_elementwise * (device.launch_overhead + _EAGER_DISPATCH)
    return total
