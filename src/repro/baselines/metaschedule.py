"""MetaSchedule baseline: TVM's TensorCore-capable search framework.

MetaSchedule (Shao et al.) generalizes Ansor with probabilistic
programs and supports TensorCore sketches.  Behaviourally — which is
what the paper compares (Section 6.4) — it is an evolutionary search
guided by a learned MLP cost model over WMMA-constrained schedule
spaces.  ``build_search_tuner`` is a thin alias of
:func:`repro.api.build_tuner`; ``method="metaschedule"`` selects the
evolutionary policy + MLP + TensorCore templates, ``method="pruner-tc"``
the paper's Pruner-in-MetaSchedule integration (LSE with the TensorCore
symbol, PaCM with the shared->fragment dataflow block).
"""

from __future__ import annotations

from repro.api import build_tuner as build_search_tuner

__all__ = ["build_search_tuner"]
