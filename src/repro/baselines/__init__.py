"""Baseline tuners and inference frameworks the paper compares against.

Search-based tensor compilers:

* :mod:`repro.baselines.metaschedule` — MetaSchedule (TVM's TensorCore-
  capable search framework): evolutionary search + MLP cost model.
* :mod:`repro.baselines.roller` — Roller: rule-based rTile enumeration,
  ~50 trials per subgraph, no learned model.
* :mod:`repro.baselines.adatune` — Adatune: Ansor-style search with
  adaptively early-stopped measurements.
* :mod:`repro.baselines.felix` — Felix: gradient-style descent on a
  relaxed tile space (fails on irregular shapes).
* :mod:`repro.baselines.tlm` — TLM: an offline-trained generative
  sampler (fails on subgraphs outside its pre-training corpus).

Off-the-shelf frameworks (:mod:`repro.baselines.frameworks`): PyTorch
(cudaLib), Triton (TorchInductor max-autotune) and Torch-TensorRT as
vendor-library surrogates.
"""

from repro.baselines.adatune import AdatuneTuner
from repro.baselines.felix import FelixTuner
from repro.baselines.frameworks import framework_latency
from repro.baselines.metaschedule import build_search_tuner
from repro.baselines.roller import RollerTuner
from repro.baselines.tlm import TLMTuner

__all__ = [
    "AdatuneTuner",
    "FelixTuner",
    "framework_latency",
    "build_search_tuner",
    "RollerTuner",
    "TLMTuner",
]
