"""Felix baseline: gradient descent over a relaxed tile space (ASPLOS'24).

Felix rewrites the schedule space into a differentiable surrogate and
searches by gradient descent.  We model its essence: *local* steepest
descent in tile-exponent space (moving prime factors between adjacent
tiling levels) under an analytical objective, restarted from a few
random points, measuring the best descended candidates each round.
Local descent is fast but — unlike global evolutionary search — gets
trapped near its starts, which is why Felix trails Pruner (Figure 8).

Felix's feature extraction requires *regular* shapes; operators with
irregular extents or special structure fail (the paper's X entries).
:meth:`supports` encodes that: every loop extent must be divisible by 4
after removing odd "shape remainder" dims, and depthwise / transposed
convs are unsupported.
"""

from __future__ import annotations

import math

from repro.core.analyzer import SymbolBasedAnalyzer, is_launchable
from repro.errors import ScheduleError, TuningFailure
from repro.hardware.device import DeviceSpec
from repro.hardware.measure import MeasureRunner
from repro.ir.ops import Workload
from repro.ir.partition import SubgraphTask
from repro.rng import make_rng
from repro.schedule.lower import lower
from repro.schedule.mutate import _move_factor  # local (gradient-like) move
from repro.schedule.sampler import random_config
from repro.schedule.sketch import generate_sketch
from repro.schedule.space import ScheduleConfig
from repro.search.records import CurvePoint
from repro.timemodel import SimClock


class FelixTuner:
    """Local gradient-style descent + measurement of descended optima."""

    def __init__(
        self,
        device: DeviceSpec,
        restarts: int = 8,
        descent_steps: int = 30,
        measure_per_round: int = 10,
        seed: int = 0,
    ) -> None:
        self.device = device
        self.restarts = restarts
        self.descent_steps = descent_steps
        self.measure_per_round = measure_per_round
        self.seed = seed
        self.analyzer = SymbolBasedAnalyzer(device)

    @staticmethod
    def supports(workload: Workload) -> bool:
        """Regular-shape requirement of Felix's feature extraction."""
        if workload.tag in ("depthwise", "conv2d_transpose"):
            return False
        for dim in workload.spatial + workload.reduction:
            if dim.extent >= 8 and dim.extent % 4 != 0:
                return False
        return True

    # ------------------------------------------------------------------
    def _descend(self, space, config: ScheduleConfig, rng) -> ScheduleConfig:
        """Steepest descent via prime-factor moves between tile levels."""
        current = config
        current_cost = self._cost(space, current)
        for _ in range(self.descent_steps):
            best_neighbor, best_cost = None, current_cost
            for axis, factors in current.tiles:
                for _try in range(3):
                    moved = current.with_tile(axis, _move_factor(rng, factors))
                    try:
                        space.validate(moved)
                    except ScheduleError:  # off-space move: try another
                        continue
                    cost = self._cost(space, moved)
                    if cost < best_cost:
                        best_neighbor, best_cost = moved, cost
            if best_neighbor is None:
                break  # local optimum
            current, current_cost = best_neighbor, best_cost
        return current

    def _cost(self, space, config: ScheduleConfig) -> float:
        prog = lower(space, config)
        if not is_launchable(prog, self.device):
            return math.inf
        return self.analyzer.latency(prog)

    # ------------------------------------------------------------------
    def tune(self, subgraphs: list[SubgraphTask], rounds: int):
        """Tune supported subgraphs; raises TuningFailure otherwise."""
        from repro.search.tuner import TuneResult  # local import, no cycle
        from repro.search.records import RecordLog, TuningRecord

        tiled = [s for s in subgraphs if s.workload.is_tiled]
        for sub in tiled:
            if not self.supports(sub.workload):
                raise TuningFailure(
                    f"Felix cannot extract features for {sub.workload.name}"
                )
        clock = SimClock()
        runner = MeasureRunner(self.device, clock=clock, rng=make_rng(self.seed))
        rng = make_rng(self.seed + 1)
        records = RecordLog()
        curve: list[CurvePoint] = []
        spaces = {s.workload.key: generate_sketch(s.workload) for s in tiled}

        for round_index in range(rounds):
            sub = tiled[round_index % len(tiled)]
            space = spaces[sub.workload.key]
            optima = []
            for _ in range(self.restarts):
                start = random_config(space, rng)
                descended = self._descend(space, start, rng)
                optima.append(descended)
                clock.charge_sa(self.descent_steps * 6)
            optima.sort(key=lambda c: self._cost(space, c))
            batch = [
                lower(space, c)
                for c in optima[: self.measure_per_round]
                if is_launchable(lower(space, c), self.device)
            ]
            for res in runner.measure(batch):
                records.add(
                    TuningRecord(
                        task_key=sub.workload.key,
                        prog=res.prog,
                        latency=res.latency,
                        sim_time=clock.total,
                        round_index=round_index,
                    )
                )
            total = 0.0
            complete = True
            for s in tiled:
                best = records.best_latency(s.workload.key)
                if math.isfinite(best):
                    total += best * s.weight
                else:
                    complete = False
            curve.append(
                CurvePoint(
                    sim_time=clock.total,
                    trials=len(records),
                    latency=total if complete else math.inf,
                )
            )
        return TuneResult(
            curve=curve,
            records=records,
            clock=clock,
            best={s.workload.key: records.best_latency(s.workload.key) for s in tiled},
            weights={s.workload.key: s.weight for s in tiled},
        )
