"""On-device measurement harness (simulated).

Wraps the ground-truth simulator with

* multiplicative log-normal measurement noise (run-to-run jitter),
* simulated wall-clock accounting: every trial costs compile/launch
  overhead plus ``latency * repeats`` seconds on the
  :class:`~repro.timemodel.SimClock` — the "Measurement" row of the
  paper's Table 1.

The hot path is :meth:`MeasureRunner.measure_batch`, which takes the
already-packed :class:`~repro.schedule.batch.CandidateBatch` the search
policies produce and simulates/noises/charges it as arrays — one noise
draw call, one clock charge.  The scalar :meth:`MeasureRunner.measure`
is a thin wrapper that packs its program list into a batch; both paths
consume the RNG identically (``Generator.normal(size=k)`` yields the
same stream as ``k`` sequential scalar draws), so they are
bit-equivalent under a fixed seed.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro import obs
from repro.hardware.device import DeviceSpec
from repro.hardware.simulator import GroundTruthSimulator
from repro.rng import make_rng
from repro.schedule.batch import CandidateBatch
from repro.schedule.lower import LoweredProgram
from repro.timemodel import SimClock


@dataclass(frozen=True)
class MeasureResult:
    """One measured trial."""

    prog: LoweredProgram
    latency: float  # seconds, noise included; inf for invalid programs
    valid: bool

    @property
    def throughput(self) -> float:
        """FLOP/s achieved (0 for invalid programs)."""
        if not self.valid or not math.isfinite(self.latency):
            return 0.0
        return self.prog.flops / self.latency


@dataclass
class MeasureResultBatch:
    """One round of measured trials, structure-of-arrays.

    ``latency`` includes measurement noise (inf for invalid programs);
    ``batch`` is the measured candidates themselves, so consumers can
    materialize :class:`~repro.schedule.lower.LoweredProgram` objects
    for exactly the rows they keep.
    """

    batch: CandidateBatch
    latency: np.ndarray  # (N,) seconds
    valid: np.ndarray  # (N,) bool

    def __len__(self) -> int:
        return len(self.latency)

    def throughput(self) -> np.ndarray:
        """FLOP/s achieved per trial (0 for invalid programs)."""
        out = np.zeros(len(self), dtype=np.float64)
        ok = self.valid & np.isfinite(self.latency)
        out[ok] = self.batch.flops[ok] / self.latency[ok]
        return out

    def result(self, i: int) -> MeasureResult:
        """Scalar :class:`MeasureResult` view of trial ``i``."""
        return MeasureResult(
            prog=self.batch.program(i),
            latency=float(self.latency[i]),
            valid=bool(self.valid[i]),
        )

    def to_results(self) -> list[MeasureResult]:
        """Materialize every trial as a scalar :class:`MeasureResult`."""
        return [self.result(i) for i in range(len(self))]


class MeasureRunner:
    """Measures programs on a simulated device, charging simulated time."""

    def __init__(
        self,
        device: DeviceSpec,
        clock: SimClock | None = None,
        noise_sigma: float = 0.015,
        rng: np.random.Generator | None = None,
    ) -> None:
        self.device = device
        self.simulator = GroundTruthSimulator(device)
        self.clock = clock if clock is not None else SimClock()
        self.noise_sigma = noise_sigma
        self.rng = rng if rng is not None else make_rng(0)
        self.count = 0  # total trials measured

    def measure_batch(self, batch: CandidateBatch) -> MeasureResultBatch:
        """Measure a packed candidate batch (one 'round' of trials)."""
        n = len(batch)
        sim = self.simulator.run_batch(batch)
        latency = sim.latency.copy()  # already inf for invalid rows
        valid_idx = np.flatnonzero(sim.valid)
        if len(valid_idx):
            noise = np.exp(self.rng.normal(0.0, self.noise_sigma, size=len(valid_idx)))
            latency[valid_idx] = latency[valid_idx] * noise
        # Invalid programs still cost compile overhead (the harness
        # discovers the failure); valid ones cost run time on top.
        self.clock.charge_measurement(latency[valid_idx].tolist())
        if n > len(valid_idx):
            self.clock.charge(
                "measurement",
                (n - len(valid_idx)) * self.clock.costs.measure_overhead,
            )
        self.count += n
        obs.MEASURED.inc(n)
        return MeasureResultBatch(batch=batch, latency=latency, valid=sim.valid)

    def measure(self, progs: list[LoweredProgram]) -> list[MeasureResult]:
        """Measure a list of programs (wrapper over :meth:`measure_batch`)."""
        if not progs:
            return []
        return self.measure_batch(CandidateBatch.from_programs(progs)).to_results()

    def true_latency(self, prog: LoweredProgram) -> float:
        """Noise-free ground truth (used by dataset generation / metrics)."""
        return self.simulator.latency(prog)
