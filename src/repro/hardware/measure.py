"""On-device measurement harness (simulated).

Wraps the ground-truth simulator with

* multiplicative log-normal measurement noise (run-to-run jitter),
* simulated wall-clock accounting: every trial costs compile/launch
  overhead plus ``latency * repeats`` seconds on the
  :class:`~repro.timemodel.SimClock` — the "Measurement" row of the
  paper's Table 1.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.hardware.device import DeviceSpec
from repro.hardware.simulator import GroundTruthSimulator
from repro.rng import make_rng
from repro.schedule.lower import LoweredProgram
from repro.timemodel import SimClock


@dataclass(frozen=True)
class MeasureResult:
    """One measured trial."""

    prog: LoweredProgram
    latency: float  # seconds, noise included; inf for invalid programs
    valid: bool

    @property
    def throughput(self) -> float:
        """FLOP/s achieved (0 for invalid programs)."""
        if not self.valid or not math.isfinite(self.latency):
            return 0.0
        return self.prog.flops / self.latency


class MeasureRunner:
    """Measures programs on a simulated device, charging simulated time."""

    def __init__(
        self,
        device: DeviceSpec,
        clock: SimClock | None = None,
        noise_sigma: float = 0.015,
        rng: np.random.Generator | None = None,
    ) -> None:
        self.device = device
        self.simulator = GroundTruthSimulator(device)
        self.clock = clock if clock is not None else SimClock()
        self.noise_sigma = noise_sigma
        self.rng = rng if rng is not None else make_rng(0)
        self.count = 0  # total trials measured

    def measure(self, progs: list[LoweredProgram]) -> list[MeasureResult]:
        """Measure a batch of programs (one 'round' of trials)."""
        results: list[MeasureResult] = []
        charged: list[float] = []
        for prog in progs:
            sim = self.simulator.run(prog)
            if sim.valid:
                noise = math.exp(self.rng.normal(0.0, self.noise_sigma))
                latency = sim.latency * noise
                charged.append(latency)
            else:
                latency = math.inf
            results.append(MeasureResult(prog, latency, sim.valid))
        # Invalid programs still cost compile overhead (the harness
        # discovers the failure); valid ones cost run time on top.
        self.clock.charge_measurement(charged)
        if len(progs) > len(charged):
            self.clock.charge(
                "measurement",
                (len(progs) - len(charged)) * self.clock.costs.measure_overhead,
            )
        self.count += len(progs)
        return results

    def true_latency(self, prog: LoweredProgram) -> float:
        """Noise-free ground truth (used by dataset generation / metrics)."""
        return self.simulator.latency(prog)
