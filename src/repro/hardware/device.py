"""Device abstraction: the ``d`` of the paper's Algorithms 1-2.

A :class:`DeviceSpec` carries both the *penalty parameters* the
Symbol-based Analyzer consumes (m_l0, m_l1, pu_l1, n_l1, pu_l2, n_l2,
T_p, T_m — Section 4.1) and the extra micro-architectural limits the
ground-truth simulator uses (occupancy limits, register files, ...).

Presets cover the paper's platforms: **A100**, **TITAN V**, **Jetson
Orin-AGX** (evaluation targets) and **T4**, **K80** (TenSet dataset
platforms used for offline pre-training and dataset metrics).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import DeviceError


@dataclass(frozen=True)
class DeviceSpec:
    """Static description of one GPU-like accelerator.

    Penalty-facing fields (paper notation in parentheses):

    * ``max_regs_per_thread`` (m_l0): L0 allocation limit, in elements.
    * ``smem_per_block`` (m_l1): L1 allocation limit per block, bytes.
    * ``warp_schedulers`` (pu_l1): concurrently active L1 scheduling
      units per SM.
    * ``warp_size`` (n_l1): scheduling granularity at L1.
    * ``sms`` (pu_l2): concurrently schedulable L2 blocks (SM count).
    * ``transaction_elems`` (n_l2): L2 memory transaction length.
    * ``peak_flops`` (T_p) / ``peak_bw`` (T_m): theoretical peaks.
    """

    name: str
    sms: int
    peak_flops: float  # FP32 FLOP/s (T_p)
    peak_bw: float  # bytes/s (T_m)
    tc_peak_flops: float = 0.0  # FP16 TensorCore FLOP/s
    warp_size: int = 32
    warp_schedulers: int = 4
    transaction_elems: int = 32
    max_regs_per_thread: int = 255
    smem_per_block: int = 48 * 1024
    # simulator-only micro-architecture limits
    max_threads_per_block: int = 1024
    max_threads_per_sm: int = 2048
    max_blocks_per_sm: int = 32
    max_warps_per_sm: int = 64
    regs_per_sm: int = 65536
    smem_per_sm: int = 96 * 1024
    launch_overhead: float = 4.0e-6  # seconds per kernel launch
    residual_scale: float = 0.18  # amplitude of the device-specific residual

    def __post_init__(self) -> None:
        if self.sms < 1 or self.peak_flops <= 0 or self.peak_bw <= 0:
            raise DeviceError(f"invalid device parameters for {self.name!r}")

    @property
    def has_tensorcore(self) -> bool:
        """True if the device exposes TensorCores (fp16 WMMA path)."""
        return self.tc_peak_flops > 0

    def peak_for(self, tensorcore: bool) -> float:
        """Peak FLOP/s for the requested execution path."""
        if tensorcore:
            if not self.has_tensorcore:
                raise DeviceError(f"{self.name} has no TensorCores")
            return self.tc_peak_flops
        return self.peak_flops

    def __str__(self) -> str:
        return self.name


_PRESETS: dict[str, DeviceSpec] = {
    "a100": DeviceSpec(
        name="a100",
        sms=108,
        peak_flops=19.5e12,
        peak_bw=1555e9,
        tc_peak_flops=312e12,
        smem_per_block=96 * 1024,
        smem_per_sm=164 * 1024,
        regs_per_sm=65536,
        max_threads_per_sm=2048,
        launch_overhead=3.0e-6,
        residual_scale=0.18,
    ),
    "titanv": DeviceSpec(
        name="titanv",
        sms=80,
        peak_flops=14.9e12,
        peak_bw=652e9,
        tc_peak_flops=110e12,
        smem_per_block=48 * 1024,
        smem_per_sm=96 * 1024,
        launch_overhead=4.0e-6,
        residual_scale=0.20,
    ),
    "orin": DeviceSpec(
        name="orin",
        sms=16,
        peak_flops=5.32e12,
        peak_bw=204e9,
        tc_peak_flops=85e12,
        smem_per_block=48 * 1024,
        smem_per_sm=164 * 1024,
        max_threads_per_sm=1536,
        max_warps_per_sm=48,
        launch_overhead=6.0e-6,
        residual_scale=0.22,
    ),
    "t4": DeviceSpec(
        name="t4",
        sms=40,
        peak_flops=8.1e12,
        peak_bw=320e9,
        tc_peak_flops=65e12,
        smem_per_block=48 * 1024,
        smem_per_sm=64 * 1024,
        max_threads_per_sm=1024,
        max_warps_per_sm=32,
        launch_overhead=4.0e-6,
        residual_scale=0.20,
    ),
    "k80": DeviceSpec(
        name="k80",
        sms=13,
        peak_flops=4.37e12,
        peak_bw=240e9,
        tc_peak_flops=0.0,
        smem_per_block=48 * 1024,
        smem_per_sm=112 * 1024,
        regs_per_sm=131072,
        launch_overhead=8.0e-6,
        residual_scale=0.24,
    ),
}


def get_device(name: str) -> DeviceSpec:
    """Look up a device preset by (case-insensitive) name."""
    key = name.lower().replace("-", "").replace("_", "")
    aliases = {"jetsonorin": "orin", "orinagx": "orin", "titan": "titanv", "titanv": "titanv"}
    key = aliases.get(key, key)
    if key not in _PRESETS:
        raise DeviceError(f"unknown device {name!r}; known: {sorted(_PRESETS)}")
    return _PRESETS[key]


def list_devices() -> list[str]:
    """Names of all built-in device presets."""
    return sorted(_PRESETS)
