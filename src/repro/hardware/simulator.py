"""Analytical GPU ground truth — the stand-in for physical hardware.

The paper's premise (Section 4.1) is that tensor-program performance
*aligns with the accelerator's hierarchical parallel units*: the
hardware-aware penalties explain most of the latency, and a learned
cost model captures what remains.  The simulator is built exactly that
way.  Its latency shares the penalty **skeleton** with the Symbol-based
Analyzer:

    compute ~ S8 / (T_p * prod(P_c) * extra_c)
    memory  ~ S5 * bytes / (T_m * prod(P_m) * extra_m)

and then diverges from the draft model through effects the closed-form
penalties cannot express:

* ``extra_c``: occupancy saturation, instruction-level parallelism from
  register tiles, unroll quality, register-spill slowdown, TensorCore
  fragment alignment;
* ``extra_m``: bandwidth-saturation from occupancy, vector-load bonus;
* latency composition ``max(c, m) + 0.3 * min(c, m)`` (overlap) rather
  than the analyzer's plain sum;
* kernel-launch and splitK reduction overheads;
* a smooth **device-specific residual**: a small fixed random network
  (seeded by the device name) over structural features, scaled by
  ``device.residual_scale``.

The residual is deterministic and *learnable* (a function of the same
quantities the cost-model features expose) but not expressible by the
draft model — exactly the relationship between empirical formulas and
learned cost models that draft-then-verify exploits.  It also differs
across devices, creating the cross-platform gap MoA addresses.

Measurement noise is *not* applied here (the simulator is the "true"
device); :mod:`repro.hardware.measure` adds it.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from functools import lru_cache

import numpy as np

from repro.core.penalty import compute_penalties
from repro.core.symbols import extract_symbols
from repro.hardware.device import DeviceSpec
from repro.rng import rng_for
from repro.schedule.lower import LoweredProgram

_RESIDUAL_FEATURES = 14
_RESIDUAL_HIDDEN = 10


@dataclass(frozen=True)
class SimulationResult:
    """Outcome of running one program on the simulated device."""

    latency: float  # seconds (math.inf when invalid)
    valid: bool
    compute_time: float = 0.0
    memory_time: float = 0.0
    occupancy: float = 0.0
    reason: str = ""


@lru_cache(maxsize=32)
def _residual_net(device_name: str) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Fixed random 2-layer net defining the device residual."""
    rng = rng_for("residual-net", device_name)
    w1 = rng.normal(0.0, 0.9, size=(_RESIDUAL_HIDDEN, _RESIDUAL_FEATURES))
    b1 = rng.normal(0.0, 0.3, size=_RESIDUAL_HIDDEN)
    w2 = rng.normal(0.0, 0.9, size=_RESIDUAL_HIDDEN)
    return w1, b1, w2


def residual_features(prog: LoweredProgram) -> np.ndarray:
    """Structural feature vector feeding the device residual.

    Log-scaled quantities mirroring what the dataflow features expose;
    learned cost models can therefore *learn* the residual while the
    closed-form draft model cannot.
    """

    def lg(x: float) -> float:
        return math.log2(1.0 + max(0.0, x)) / 16.0

    wl = prog.workload
    return np.array(
        [
            lg(prog.acc_regs),
            lg(prog.reg_elems),
            lg(prog.smem_elems),
            lg(prog.threads_per_block),
            lg(prog.vthreads),
            lg(prog.grid),
            lg(prog.trans_span),
            lg(prog.thread_compute),
            lg(prog.traffic_elems / max(1.0, prog.flops) * 1e3),
            lg(prog.unroll),
            lg(prog.vector),
            lg(prog.splitk),
            lg(wl.arithmetic_intensity()),
            1.0 if prog.tensorcore else 0.0,
        ]
    )


class GroundTruthSimulator:
    """Deterministic latency oracle for one device."""

    def __init__(self, device: DeviceSpec) -> None:
        self.device = device

    # ------------------------------------------------------------------
    def run(self, prog: LoweredProgram) -> SimulationResult:
        """Simulate one program; deterministic for a given (device, program)."""
        invalid = self._check_validity(prog)
        if invalid:
            return SimulationResult(math.inf, valid=False, reason=invalid)

        occupancy, blocks_per_sm = self._occupancy(prog)
        if blocks_per_sm < 1:
            return SimulationResult(math.inf, valid=False, reason="zero occupancy")

        symbols = extract_symbols(prog)
        pen = compute_penalties(symbols, self.device, prog.workload.dtype_bytes)

        compute_time = self._compute_time(prog, pen, occupancy)
        memory_time = self._memory_time(prog, pen, occupancy)
        core = max(compute_time, memory_time) + 0.3 * min(compute_time, memory_time)
        core *= self._residual_factor(prog)

        latency = core + self._overheads(prog)
        return SimulationResult(
            latency=latency,
            valid=True,
            compute_time=compute_time,
            memory_time=memory_time,
            occupancy=occupancy,
        )

    def latency(self, prog: LoweredProgram) -> float:
        """Shorthand: latency in seconds (inf when invalid)."""
        return self.run(prog).latency

    # ------------------------------------------------------------------
    def _check_validity(self, prog: LoweredProgram) -> str:
        d = self.device
        if prog.threads_per_block > d.max_threads_per_block:
            return (
                f"threads per block {prog.threads_per_block} exceeds "
                f"{d.max_threads_per_block}"
            )
        if prog.smem_bytes > d.smem_per_block:
            return f"shared memory {prog.smem_bytes}B exceeds {d.smem_per_block}B"
        if prog.grid < 1 or prog.threads_per_block < 1:
            return "empty launch configuration"
        return ""

    def _reg_cap(self, prog: LoweredProgram) -> int:
        """Registers per thread after the compiler caps usage to launch.

        CUDA compilers spill registers rather than fail when a block
        would exceed the SM register file; programs above the cap run,
        slower (see the spill factor in :meth:`_compute_time`).
        """
        d = self.device
        per_thread_budget = d.regs_per_sm // max(1, prog.threads_per_block)
        return max(1, min(d.max_regs_per_thread, per_thread_budget))

    def _occupancy(self, prog: LoweredProgram) -> tuple[float, int]:
        d = self.device
        threads = prog.threads_per_block
        warps = math.ceil(threads / d.warp_size)
        regs_per_thread = min(prog.reg_elems, self._reg_cap(prog))
        limits = [
            d.max_blocks_per_sm,
            d.max_threads_per_sm // threads,
            d.regs_per_sm // max(1, regs_per_thread * threads),
        ]
        if prog.smem_bytes > 0:
            limits.append(d.smem_per_sm // max(1, prog.smem_bytes))
        blocks_per_sm = max(0, min(limits))
        active_warps = blocks_per_sm * warps
        occupancy = min(1.0, active_warps / d.max_warps_per_sm)
        return occupancy, blocks_per_sm

    def _compute_time(self, prog, pen, occupancy: float) -> float:
        """Compute term: penalty skeleton x micro-architectural extras."""
        d = self.device
        peak = d.peak_for(prog.tensorcore)
        skeleton = pen.compute_product()  # density * P_l1_c * alpha * P_l2_c * S9

        # Extras the draft model does not know about:
        occ_factor = occupancy / (occupancy + 0.15) * 1.15  # warp-latency hiding
        inner_tile = prog.acc_regs / max(1, prog.vthreads)
        ilp = min(1.0, 0.60 + 0.10 * math.log2(1.0 + min(inner_tile, 128.0)))
        if prog.unroll >= 64:
            unroll_bonus = 1.0
        elif prog.unroll >= 16:
            unroll_bonus = 0.97
        else:
            unroll_bonus = 0.92
        reg_cap = self._reg_cap(prog)
        spill = 1.0
        if prog.reg_elems > reg_cap:
            spill = (reg_cap / prog.reg_elems) ** 1.5

        extra = occ_factor * ilp * unroll_bonus * spill
        return prog.flops / (peak * max(skeleton * extra, 1e-6))

    def _memory_time(self, prog, pen, occupancy: float) -> float:
        """Memory term: penalty skeleton x saturation/vectorization extras."""
        d = self.device
        skeleton = pen.memory_product()  # P_l0_m * P_l1_m * P_l2_m
        saturation = min(1.0, (occupancy + 0.15) / 0.60)
        vec_bonus = min(1.15, 1.0 + 0.05 * math.log2(max(1, prog.vector)))
        extra = saturation * vec_bonus
        return prog.traffic_bytes / (d.peak_bw * max(skeleton * extra, 1e-6))

    def _overheads(self, prog: LoweredProgram) -> float:
        d = self.device
        overhead = d.launch_overhead
        if prog.splitk > 1:
            # partial-sum reduction kernel: one more launch + traffic
            reduce_bytes = (
                prog.workload.output_elems * prog.splitk * prog.workload.dtype_bytes
            )
            overhead += d.launch_overhead + reduce_bytes / (d.peak_bw * 0.6)
        return overhead

    def _residual_factor(self, prog: LoweredProgram) -> float:
        w1, b1, w2 = _residual_net(self.device.name)
        phi = residual_features(prog)
        hidden = np.tanh(w1 @ phi + b1)
        r = math.tanh(float(w2 @ hidden))
        return math.exp(self.device.residual_scale * r)
