"""Analytical GPU ground truth — the stand-in for physical hardware.

The paper's premise (Section 4.1) is that tensor-program performance
*aligns with the accelerator's hierarchical parallel units*: the
hardware-aware penalties explain most of the latency, and a learned
cost model captures what remains.  The simulator is built exactly that
way.  Its latency shares the penalty **skeleton** with the Symbol-based
Analyzer:

    compute ~ S8 / (T_p * prod(P_c) * extra_c)
    memory  ~ S5 * bytes / (T_m * prod(P_m) * extra_m)

and then diverges from the draft model through effects the closed-form
penalties cannot express:

* ``extra_c``: occupancy saturation, instruction-level parallelism from
  register tiles, unroll quality, register-spill slowdown, TensorCore
  fragment alignment;
* ``extra_m``: bandwidth-saturation from occupancy, vector-load bonus;
* latency composition ``max(c, m) + 0.3 * min(c, m)`` (overlap) rather
  than the analyzer's plain sum;
* kernel-launch and splitK reduction overheads;
* a smooth **device-specific residual**: a small fixed random network
  (seeded by the device name) over structural features, scaled by
  ``device.residual_scale``.

The residual is deterministic and *learnable* (a function of the same
quantities the cost-model features expose) but not expressible by the
draft model — exactly the relationship between empirical formulas and
learned cost models that draft-then-verify exploits.  It also differs
across devices, creating the cross-platform gap MoA addresses.

Measurement noise is *not* applied here (the simulator is the "true"
device); :mod:`repro.hardware.measure` adds it.

The implementation is array-native: :meth:`GroundTruthSimulator.run_batch`
evaluates a whole :class:`~repro.schedule.batch.CandidateBatch` in a
handful of numpy ops (one einsum for the residual net), and the scalar
:meth:`~GroundTruthSimulator.run` is a thin wrapper over a one-row
batch.  The residual net deliberately uses ``einsum`` rather than
``@``: BLAS gemm picks different accumulation orders for different
batch shapes, while einsum keeps every row's dot products
shape-independent — which is what makes ``run_batch`` bit-identical to
``run`` regardless of batch size.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from functools import lru_cache

import numpy as np

from repro.cache import register_lru
from repro.core.penalty import compute_penalties_batch
from repro.core.symbols import extract_symbols_batch
from repro.hardware.device import DeviceSpec
from repro.rng import rng_for
from repro.schedule.batch import CandidateBatch
from repro.schedule.lower import LoweredProgram

_RESIDUAL_FEATURES = 14
_RESIDUAL_HIDDEN = 10

#: Invalidity reason codes of :class:`SimulationResultBatch` (0 = valid);
#: precedence mirrors the scalar check order: threads > smem > empty > occ.
REASON_OK = 0
REASON_THREADS = 1
REASON_SMEM = 2
REASON_EMPTY = 3
REASON_OCCUPANCY = 4


@dataclass(frozen=True)
class SimulationResult:
    """Outcome of running one program on the simulated device."""

    latency: float  # seconds (math.inf when invalid)
    valid: bool
    compute_time: float = 0.0
    memory_time: float = 0.0
    occupancy: float = 0.0
    reason: str = ""


@dataclass
class SimulationResultBatch:
    """Outcomes of a whole candidate batch, one array per field.

    ``reason_code`` holds the ``REASON_*`` codes; the human-readable
    strings of the scalar path are materialized lazily by
    :meth:`reason` / :meth:`row` (only invalid candidates that someone
    actually inspects pay for string formatting).
    """

    device: DeviceSpec
    latency: np.ndarray  # (N,) seconds, inf when invalid
    valid: np.ndarray  # (N,) bool
    compute_time: np.ndarray  # (N,) 0.0 when invalid
    memory_time: np.ndarray  # (N,) 0.0 when invalid
    occupancy: np.ndarray  # (N,) 0.0 when invalid
    reason_code: np.ndarray  # (N,) REASON_* codes
    threads: np.ndarray  # (N,) for reason formatting
    smem_bytes: np.ndarray  # (N,) for reason formatting

    def __len__(self) -> int:
        return len(self.latency)

    def reason(self, i: int) -> str:
        """Scalar-identical invalidity reason of candidate ``i``."""
        code = int(self.reason_code[i])
        if code == REASON_OK:
            return ""
        if code == REASON_THREADS:
            return (
                f"threads per block {int(self.threads[i])} exceeds "
                f"{self.device.max_threads_per_block}"
            )
        if code == REASON_SMEM:
            return (
                f"shared memory {int(self.smem_bytes[i])}B exceeds "
                f"{self.device.smem_per_block}B"
            )
        if code == REASON_EMPTY:
            return "empty launch configuration"
        return "zero occupancy"

    def row(self, i: int) -> SimulationResult:
        """Scalar :class:`SimulationResult` view of candidate ``i``."""
        return SimulationResult(
            latency=float(self.latency[i]),
            valid=bool(self.valid[i]),
            compute_time=float(self.compute_time[i]),
            memory_time=float(self.memory_time[i]),
            occupancy=float(self.occupancy[i]),
            reason=self.reason(i),
        )


@lru_cache(maxsize=32)
def _residual_net(device_name: str) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Fixed random 2-layer net defining the device residual."""
    rng = rng_for("residual-net", device_name)
    w1 = rng.normal(0.0, 0.9, size=(_RESIDUAL_HIDDEN, _RESIDUAL_FEATURES))
    b1 = rng.normal(0.0, 0.3, size=_RESIDUAL_HIDDEN)
    w2 = rng.normal(0.0, 0.9, size=_RESIDUAL_HIDDEN)
    return w1, b1, w2


register_lru("hardware.simulator._residual_net", _residual_net)


def residual_features_batch(batch: CandidateBatch) -> np.ndarray:
    """Structural feature matrix ``(N, 14)`` feeding the device residual.

    Log-scaled quantities mirroring what the dataflow features expose;
    learned cost models can therefore *learn* the residual while the
    closed-form draft model cannot.
    """

    def lg(x: np.ndarray) -> np.ndarray:
        return np.log2(1.0 + np.maximum(0.0, x)) / 16.0

    return np.stack(
        [
            lg(batch.acc_regs),
            lg(batch.reg_elems),
            lg(batch.smem_elems),
            lg(batch.threads),
            lg(batch.vthreads),
            lg(batch.grid),
            lg(batch.trans_span),
            lg(batch.thread_compute),
            lg(batch.traffic_elems / np.maximum(1.0, batch.flops) * 1e3),
            lg(batch.unroll),
            lg(batch.vector),
            lg(batch.splitk),
            lg(batch.arith_intensity),
            batch.tensorcore.astype(np.float64),
        ],
        axis=1,
    )


def residual_features(prog: LoweredProgram) -> np.ndarray:
    """Structural feature vector of one program (one-row batch view)."""
    return residual_features_batch(CandidateBatch.from_programs([prog]))[0]


class GroundTruthSimulator:
    """Deterministic latency oracle for one device."""

    def __init__(self, device: DeviceSpec) -> None:
        self.device = device

    # ------------------------------------------------------------------
    def run(self, prog: LoweredProgram) -> SimulationResult:
        """Simulate one program; deterministic for a given (device, program)."""
        return self.run_batch(CandidateBatch.from_programs([prog])).row(0)

    def run_batch(self, batch: CandidateBatch) -> SimulationResultBatch:
        """Simulate a whole batch in a few numpy ops.

        Bit-identical, per candidate, to the scalar :meth:`run` (the
        measurement-equivalence suite asserts this): every arithmetic
        step keeps the scalar path's operation order, invalid rows are
        masked out after the fact rather than branched around, and the
        residual net runs as a shape-independent einsum.
        """
        d = self.device
        n = len(batch)
        threads = batch.threads
        smem_bytes = batch.smem_elems * batch.dtype_bytes

        # -- validity (assignment order = reversed scalar precedence) --
        reason = np.zeros(n, dtype=np.int64)
        reason[(batch.grid < 1) | (threads < 1)] = REASON_EMPTY
        reason[smem_bytes > d.smem_per_block] = REASON_SMEM
        reason[threads > d.max_threads_per_block] = REASON_THREADS

        # -- occupancy (divisors clamped so invalid rows stay finite) --
        thr = np.maximum(1, threads)
        warps = -(-thr // d.warp_size)
        per_thread_budget = d.regs_per_sm // thr
        reg_cap = np.maximum(1, np.minimum(d.max_regs_per_thread, per_thread_budget))
        regs_per_thread = np.minimum(batch.reg_elems, reg_cap)
        limits = np.minimum(d.max_blocks_per_sm, d.max_threads_per_sm // thr)
        limits = np.minimum(
            limits, d.regs_per_sm // np.maximum(1, regs_per_thread * thr)
        )
        limits = np.minimum(
            limits,
            np.where(
                smem_bytes > 0,
                d.smem_per_sm // np.maximum(1, smem_bytes),
                np.iinfo(np.int64).max,
            ),
        )
        blocks_per_sm = np.maximum(0, limits)
        occupancy = np.minimum(1.0, (blocks_per_sm * warps) / d.max_warps_per_sm)
        reason[(reason == REASON_OK) & (blocks_per_sm < 1)] = REASON_OCCUPANCY
        valid = reason == REASON_OK

        with np.errstate(divide="ignore", invalid="ignore", over="ignore"):
            symbols = extract_symbols_batch(batch)
            pen = compute_penalties_batch(symbols, d, batch.dtype_bytes)

            # -- compute term --
            peak = np.full(n, float(d.peak_flops))
            if batch.tensorcore.any():
                # peak_for(True) raises on non-TC devices; only consult
                # it when the batch actually contains TC candidates.
                peak[batch.tensorcore] = d.peak_for(True)
            skeleton_c = pen.compute_product()
            occ_factor = occupancy / (occupancy + 0.15) * 1.15
            inner_tile = batch.acc_regs / np.maximum(1, batch.vthreads)
            ilp = np.minimum(
                1.0, 0.60 + 0.10 * np.log2(1.0 + np.minimum(inner_tile, 128.0))
            )
            unroll_bonus = np.where(
                batch.unroll >= 64, 1.0, np.where(batch.unroll >= 16, 0.97, 0.92)
            )
            spill = np.where(
                batch.reg_elems > reg_cap,
                (reg_cap / np.maximum(1, batch.reg_elems)) ** 1.5,
                1.0,
            )
            extra_c = occ_factor * ilp * unroll_bonus * spill
            compute_time = batch.flops / (peak * np.maximum(skeleton_c * extra_c, 1e-6))

            # -- memory term --
            skeleton_m = pen.memory_product()
            saturation = np.minimum(1.0, (occupancy + 0.15) / 0.60)
            vec_bonus = np.minimum(
                1.15, 1.0 + 0.05 * np.log2(np.maximum(1, batch.vector))
            )
            extra_m = saturation * vec_bonus
            traffic_bytes = batch.traffic_elems * batch.dtype_bytes
            memory_time = traffic_bytes / (
                d.peak_bw * np.maximum(skeleton_m * extra_m, 1e-6)
            )

            # -- composition + residual + overheads --
            core = np.maximum(compute_time, memory_time) + 0.3 * np.minimum(
                compute_time, memory_time
            )
            core = core * self._residual_factor_batch(batch)
            overhead = np.full(n, float(d.launch_overhead))
            reduce_bytes = batch.output_elems * batch.splitk * batch.dtype_bytes
            overhead = np.where(
                batch.splitk > 1,
                overhead + (d.launch_overhead + reduce_bytes / (d.peak_bw * 0.6)),
                overhead,
            )
            latency = core + overhead

        return SimulationResultBatch(
            device=d,
            latency=np.where(valid, latency, math.inf),
            valid=valid,
            compute_time=np.where(valid, compute_time, 0.0),
            memory_time=np.where(valid, memory_time, 0.0),
            occupancy=np.where(valid, occupancy, 0.0),
            reason_code=reason,
            threads=threads,
            smem_bytes=smem_bytes,
        )

    def latency(self, prog: LoweredProgram) -> float:
        """Shorthand: latency in seconds (inf when invalid)."""
        return self.run(prog).latency

    def latency_batch(self, batch: CandidateBatch) -> np.ndarray:
        """Latencies of a whole batch in seconds (inf when invalid)."""
        return self.run_batch(batch).latency

    # ------------------------------------------------------------------
    def _residual_factor_batch(self, batch: CandidateBatch) -> np.ndarray:
        w1, b1, w2 = _residual_net(self.device.name)
        phi = residual_features_batch(batch)
        hidden = np.tanh(np.einsum("nf,hf->nh", phi, w1) + b1)
        r = np.tanh(np.einsum("nh,h->n", hidden, w2))
        return np.exp(self.device.residual_scale * r)
