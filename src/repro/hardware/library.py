"""Vendor kernel-library surrogates (cuDNN / cuBLAS and friends).

The paper compares against hand-optimized libraries (through PyTorch,
TensorRT, Triton) and explains their advantages: deep per-kernel tuning,
**splitK** decompositions for long reduction axes, and **Winograd**
convolution — techniques outside TVM's simple multi-level-tiling space.

A :class:`LibrarySurrogate` models a library kernel as the best schedule
found by an exhaustive-ish deterministic search over an *extended*
space (splitK enabled), multiplied by a kernel-quality factor, with a
Winograd fast path for 3x3 stride-1 convolutions.  Results are cached
per (device, workload).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.hardware.device import DeviceSpec
from repro.hardware.simulator import GroundTruthSimulator
from repro.ir.ops import Workload
from repro.rng import rng_for
from repro.schedule.lower import LoweredProgram, lower
from repro.schedule.sampler import random_population
from repro.schedule.sketch import generate_sketch


def _pow2(n: int) -> bool:
    return n > 0 and (n & (n - 1)) == 0


def _inventory_aligned(prog: LoweredProgram, device: DeviceSpec) -> bool:
    """Library kernel inventories only contain warp-aligned, power-of-two
    tile shapes; odd hand-rolled tiles a compiler could emit are not
    stocked.  This is why libraries dominate large regular GEMMs but can
    trail tuned code on small or irregular shapes (paper Figs. 9/11)."""
    if prog.threads_per_block % device.warp_size != 0:
        return False
    if not 64 <= prog.threads_per_block <= 512:
        return False
    for _, factors in prog.config.tiles:
        if not all(f == 1 or _pow2(f) for f in factors[1:]):
            return False
    return True


@dataclass(frozen=True)
class LibraryKernel:
    """Outcome of the library's internal kernel selection."""

    latency: float
    used_splitk: bool
    used_winograd: bool


class LibrarySurrogate:
    """Simulated vendor library: near-optimal kernels per operator."""

    def __init__(
        self,
        device: DeviceSpec,
        quality: float = 0.92,
        samples: int = 256,
        shortlist: int = 12,
        refine_rounds: int = 2,
        allow_splitk: bool = True,
        allow_winograd: bool = True,
    ) -> None:
        self.device = device
        self.quality = quality
        self.samples = samples
        self.shortlist = shortlist
        self.refine_rounds = refine_rounds
        self.allow_splitk = allow_splitk
        self.allow_winograd = allow_winograd
        self.simulator = GroundTruthSimulator(device)
        self._cache: dict[str, LibraryKernel] = {}

    # ------------------------------------------------------------------
    def kernel(self, workload: Workload, tensorcore: bool = False) -> LibraryKernel:
        """Best library kernel for a workload (cached)."""
        key = f"{workload.key}|tc={tensorcore}"
        if key not in self._cache:
            self._cache[key] = self._select(workload, tensorcore)
        return self._cache[key]

    def latency(self, workload: Workload, tensorcore: bool = False) -> float:
        """Library kernel latency in seconds."""
        return self.kernel(workload, tensorcore).latency

    # ------------------------------------------------------------------
    def _select(self, workload: Workload, tensorcore: bool) -> LibraryKernel:
        best, used_splitk = self._search(workload, tensorcore)
        used_winograd = False
        if self.allow_winograd and self._winograd_eligible(workload):
            # Winograd F(2x2, 3x3) cuts multiplies by 2.25x; transform
            # overheads keep the realized gain nearer 1.4x.
            wino = best * 0.72
            if wino < best:
                best = wino
                used_winograd = True
        return LibraryKernel(best * self.quality, used_splitk, used_winograd)

    def _winograd_eligible(self, workload: Workload) -> bool:
        if workload.tag != "conv2d":
            return False
        extents = workload.loop_extents()
        kernel = extents.get("r", 1)
        # stride is encoded in the input access pattern coefficient
        stride = 1
        for read in workload.reads:
            if read.tensor == "I":
                for dim in read.index:
                    for loop, coeff in dim:
                        if loop == "p":
                            stride = coeff
        return kernel == 3 and stride == 1

    def _search(self, workload: Workload, tensorcore: bool) -> tuple[float, bool]:
        """Heuristic kernel selection over the aligned inventory.

        Vendor libraries do not autotune per call: a heuristic ranks the
        stocked kernels and the dispatcher tries a short list.  We model
        the heuristic with the same analytical formula family the draft
        model uses; its imperfection is what lets tuned code win on
        unusual shapes while the library stays near-optimal on classic
        ones (paper Figures 9/11, Tables 6/8).
        """
        from repro.core.analyzer import SymbolBasedAnalyzer, is_launchable

        space = generate_sketch(
            workload, tensorcore=tensorcore, allow_splitk=self.allow_splitk
        )
        rng = rng_for("library", self.device.name, workload.key, tensorcore)
        population = random_population(space, rng, self.samples * 4)
        progs = [lower(space, cfg) for cfg in population]
        aligned = [
            p
            for p in progs
            if is_launchable(p, self.device) and _inventory_aligned(p, self.device)
        ][: self.samples]
        if not aligned:  # degenerate shapes: fall back to any kernel
            aligned = [p for p in progs if is_launchable(p, self.device)][
                : self.samples
            ]
        heuristic = SymbolBasedAnalyzer(self.device)
        aligned.sort(key=heuristic.latency)
        shortlist = aligned[: self.shortlist]
        best_lat = math.inf
        best_splitk = False
        for prog in shortlist:
            lat = self.simulator.latency(prog)
            if lat < best_lat:
                best_lat, best_splitk = lat, prog.splitk > 1
        return best_lat, best_splitk
