"""Hardware substrate: device specs, the ground-truth simulator, measurement.

Physical GPUs are replaced by :class:`~repro.hardware.simulator.GroundTruthSimulator`,
an analytical latency model with a device-specific learnable residual
(see DESIGN.md §1 for why this preserves the paper's phenomena).
"""

from repro.hardware.device import DeviceSpec, get_device, list_devices
from repro.hardware.simulator import GroundTruthSimulator, SimulationResult
from repro.hardware.measure import MeasureResult, MeasureRunner
from repro.hardware.library import LibrarySurrogate

__all__ = [
    "DeviceSpec",
    "get_device",
    "list_devices",
    "GroundTruthSimulator",
    "SimulationResult",
    "MeasureRunner",
    "MeasureResult",
    "LibrarySurrogate",
]
