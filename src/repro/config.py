"""Global defaults for the Pruner reproduction.

The numbers mirror the paper's experimental settings (Section 5):

* ``SPEC_SIZE`` — size of the drafted candidate set S_spec (512).
* ``MEASURE_PER_ROUND`` — programs measured per tuning round (10).
* ``MAX_ROUNDS`` — maximum tuning rounds (200; 200 x 10 = 2,000 trials).
* ``MOA_MOMENTUM`` — momentum for the MoA siamese update (0.99).

Search-scale knobs (population sizes, GA steps) default to paper scale;
the experiment harnesses override them with reduced "lite" values so the
benchmark suite completes quickly.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

SPEC_SIZE = 512
MEASURE_PER_ROUND = 10
MAX_ROUNDS = 200
MOA_MOMENTUM = 0.99


@dataclass(frozen=True)
class SearchConfig:
    """Tunable knobs of a schedule-search policy.

    Attributes
    ----------
    population:
        Evolutionary-search population size per GA step.  Ansor explores
        roughly ``population * (ga_steps + 1)`` candidates per round with
        the learned cost model; Pruner explores the same set with the
        draft model instead.
    ga_steps:
        Number of genetic-algorithm generations per tuning round.
    spec_size:
        Size of the drafted candidate set (|S_spec|, paper: 512).
    random_fraction:
        Fraction of extra randomly-initialised schedules unioned into
        S_draft (Algorithm 1, line 10).
    measure_per_round:
        Programs measured on the device per round (paper: 10).
    eps_greedy:
        Fraction of measured programs chosen at random rather than by
        predicted score (exploration guard, as in Ansor).
    mutation_prob:
        Per-schedule probability of mutation inside the GA.
    """

    population: int = 512
    ga_steps: int = 4
    spec_size: int = SPEC_SIZE
    random_fraction: float = 0.1
    measure_per_round: int = MEASURE_PER_ROUND
    eps_greedy: float = 0.05
    mutation_prob: float = 0.85

    def scaled(self, factor: float) -> "SearchConfig":
        """Return a copy with population/spec sizes scaled by ``factor``."""
        return replace(
            self,
            population=max(8, int(self.population * factor)),
            spec_size=max(8, int(self.spec_size * factor)),
        )


@dataclass(frozen=True)
class TrainConfig:
    """Cost-model training hyper-parameters (online and offline)."""

    epochs: int = 25
    batch_size: int = 128
    learning_rate: float = 4e-3
    weight_decay: float = 3e-4
    grad_clip: float = 5.0


ONLINE_TRAIN = TrainConfig(epochs=6)
OFFLINE_TRAIN = TrainConfig(epochs=60)


LITE_SEARCH = SearchConfig(population=64, ga_steps=3, spec_size=48)
SMOKE_SEARCH = SearchConfig(population=16, ga_steps=2, spec_size=12)
