"""Tensor-expression IR: loop nests, access patterns, operator graphs.

This subpackage is the substrate the paper builds on (TVM's tensor
expressions + Ansor's compute DAGs), rebuilt in plain Python:

* :mod:`repro.ir.expr` — loop dimensions and linear tensor access
  patterns (rich enough for conv halos and strided access).
* :mod:`repro.ir.ops` — the operator zoo (matmul, conv2d, depthwise,
  transpose conv, pooling, element-wise, attention ops) expressed as
  :class:`~repro.ir.ops.Workload` loop nests.
* :mod:`repro.ir.dag` — network-level operator graphs.
* :mod:`repro.ir.partition` — Ansor-style graph partitioning that fuses
  element-wise epilogues into anchor operators and yields weighted
  subgraph tuning tasks.
"""

from repro.ir.expr import AccessPattern, LoopDim
from repro.ir.ops import (
    Workload,
    batch_matmul,
    conv2d,
    conv2d_transpose,
    dense,
    depthwise_conv2d,
    elementwise,
    matmul,
    pool2d,
)
from repro.ir.dag import Graph, GraphBuilder, OpNode
from repro.ir.partition import SubgraphTask, partition_graph

__all__ = [
    "AccessPattern",
    "LoopDim",
    "Workload",
    "matmul",
    "dense",
    "batch_matmul",
    "conv2d",
    "depthwise_conv2d",
    "conv2d_transpose",
    "pool2d",
    "elementwise",
    "Graph",
    "GraphBuilder",
    "OpNode",
    "SubgraphTask",
    "partition_graph",
]
