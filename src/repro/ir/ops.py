"""Operator definitions (the workload zoo).

A :class:`Workload` is the unit the tuner optimises: one anchor operator
(matmul / conv / ...) together with any fused element-wise epilogue ops,
expressed as a loop nest with access patterns.  Constructors at the
bottom of this module build the operator classes the paper evaluates
(Tables 3/4 and Figure 11).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace

from repro.errors import WorkloadError
from repro.ir.expr import AccessPattern, LoopDim

_DTYPE_BYTES = {"float32": 4, "float16": 2}

# Anchor tags that get the multi-level tiling sketch.
TILED_TAGS = frozenset({"matmul", "conv2d", "depthwise", "conv2d_transpose"})


@dataclass(frozen=True)
class Workload:
    """A fused subgraph to be tuned: anchor loop nest + epilogues.

    Attributes
    ----------
    name:
        Human-readable name, e.g. ``"conv2d_64x56x56_k64r3s3"``.
    tag:
        Operator class: ``matmul``, ``conv2d``, ``depthwise``,
        ``conv2d_transpose``, ``pool``, or ``elementwise``.  Tags in
        :data:`TILED_TAGS` receive the multi-level tiling template.
    spatial / reduction:
        Loop dimensions.  Spatial loops enumerate output elements.
    reads:
        Input tensor access patterns.
    fused_ops:
        Names of fused element-wise epilogue ops (e.g. bias-add, relu).
    flops_per_point:
        Floating-point operations per innermost iteration of the anchor
        (2 for multiply–accumulate).
    dtype:
        ``float32`` or ``float16`` (TensorCore-eligible matmuls).
    """

    name: str
    tag: str
    spatial: tuple[LoopDim, ...]
    reduction: tuple[LoopDim, ...] = ()
    reads: tuple[AccessPattern, ...] = ()
    fused_ops: tuple[str, ...] = ()
    flops_per_point: float = 2.0
    dtype: str = "float32"

    def __post_init__(self) -> None:
        if not self.spatial:
            raise WorkloadError(f"workload {self.name!r} needs at least one spatial loop")
        if self.dtype not in _DTYPE_BYTES:
            raise WorkloadError(f"unsupported dtype {self.dtype!r}")
        names = [d.name for d in self.spatial + self.reduction]
        if len(set(names)) != len(names):
            raise WorkloadError(f"duplicate loop names in workload {self.name!r}: {names}")

    # ------------------------------------------------------------------
    # derived quantities
    # ------------------------------------------------------------------
    @property
    def dtype_bytes(self) -> int:
        """Element size of the anchor computation in bytes."""
        return _DTYPE_BYTES[self.dtype]

    @property
    def loops(self) -> tuple[LoopDim, ...]:
        """All loops, spatial first."""
        return self.spatial + self.reduction

    def loop_extents(self) -> dict[str, int]:
        """Map of loop name to extent."""
        return {d.name: d.extent for d in self.loops}

    @property
    def output_elems(self) -> int:
        """Number of output elements (product of spatial extents)."""
        return math.prod(d.extent for d in self.spatial)

    @property
    def iteration_points(self) -> int:
        """Total iteration-space size (spatial x reduction)."""
        return math.prod(d.extent for d in self.loops)

    @property
    def flops(self) -> float:
        """Total floating-point operations including fused epilogues."""
        anchor = self.flops_per_point * self.iteration_points
        epilogue = len(self.fused_ops) * self.output_elems
        return anchor + epilogue

    @property
    def input_bytes(self) -> int:
        """Bytes of distinct input data (lower bound on global traffic)."""
        full = self.loop_extents()
        return sum(r.footprint(full) * r.dtype_bytes for r in self.reads)

    @property
    def output_bytes(self) -> int:
        """Bytes written to the output buffer."""
        return self.output_elems * self.dtype_bytes

    @property
    def is_tiled(self) -> bool:
        """True if this workload receives the multi-level tiling sketch."""
        return self.tag in TILED_TAGS

    @property
    def tensorcore_eligible(self) -> bool:
        """Half-precision matmuls whose matrix dims fit WMMA fragments.

        The two matrix spatial dims and the reduction dim must be
        multiples of the 16-wide fragment edge; e.g. decode-phase
        attention (one query row per head) is *not* eligible and falls
        back to CUDA cores, as in MetaSchedule.
        """
        if self.dtype != "float16" or self.tag != "matmul":
            return False
        dims = [d.extent for d in self.spatial[-2:]]
        dims += [d.extent for d in self.reduction[:1]]
        return all(extent % 16 == 0 for extent in dims)

    @property
    def key(self) -> str:
        """Stable identity string (used for hashing / record files)."""
        dims = ",".join(f"{d.name}={d.extent}" for d in self.loops)
        return f"{self.tag}|{dims}|{self.dtype}|fused={len(self.fused_ops)}"

    def arithmetic_intensity(self) -> float:
        """FLOPs per byte of compulsory traffic (roofline x-coordinate)."""
        bytes_moved = self.input_bytes + self.output_bytes
        return self.flops / max(1, bytes_moved)

    def with_fused(self, *ops: str) -> "Workload":
        """Return a copy with additional fused element-wise epilogues."""
        return replace(self, fused_ops=self.fused_ops + tuple(ops))

    def __str__(self) -> str:
        return self.name


# ----------------------------------------------------------------------
# constructors
# ----------------------------------------------------------------------
def matmul(
    m: int,
    n: int,
    k: int,
    batch: int = 1,
    dtype: str = "float32",
    name: str | None = None,
) -> Workload:
    """(Batched) matrix multiply ``C[b, i, j] += A[b, i, k] * B[b, k, j]``."""
    if min(m, n, k, batch) < 1:
        raise WorkloadError("matmul dims must be positive")
    bytes_ = _DTYPE_BYTES[dtype]
    spatial: list[LoopDim] = []
    a_index: list = []
    b_index: list = []
    if batch > 1:
        spatial.append(LoopDim("b", batch))
        a_index.append((("b", 1),))
        b_index.append((("b", 1),))
    spatial += [LoopDim("i", m), LoopDim("j", n)]
    a_index += [(("i", 1),), (("k", 1),)]
    b_index += [(("k", 1),), (("j", 1),)]
    return Workload(
        name=name or f"matmul_b{batch}_m{m}_n{n}_k{k}_{dtype}",
        tag="matmul",
        spatial=tuple(spatial),
        reduction=(LoopDim("k", k),),
        reads=(
            AccessPattern("A", tuple(a_index), bytes_),
            AccessPattern("B", tuple(b_index), bytes_),
        ),
        dtype=dtype,
    )


def batch_matmul(batch: int, m: int, n: int, k: int, dtype: str = "float32") -> Workload:
    """Batched matmul (attention scores / context ops)."""
    return matmul(m, n, k, batch=batch, dtype=dtype)


def dense(m: int, n: int, k: int, dtype: str = "float32") -> Workload:
    """Fully-connected layer as a matmul (weights are ``B[k, j]``)."""
    return matmul(m, n, k, dtype=dtype)


def conv2d(
    batch: int,
    in_channels: int,
    height: int,
    width: int,
    out_channels: int,
    kernel: int,
    stride: int = 1,
    dtype: str = "float32",
    name: str | None = None,
) -> Workload:
    """2-D convolution, NCHW layout, 'same'-style padded output extents.

    Output spatial size is ``ceil(h / stride)``.  Loops: spatial
    ``(n, ko, p, q)``; reduction ``(ci, r, s)``.
    """
    if min(batch, in_channels, height, width, out_channels, kernel, stride) < 1:
        raise WorkloadError("conv2d dims must be positive")
    out_h = max(1, (height + stride - 1) // stride)
    out_w = max(1, (width + stride - 1) // stride)
    bytes_ = _DTYPE_BYTES[dtype]
    reads = (
        AccessPattern(
            "I",
            (
                (("n", 1),),
                (("ci", 1),),
                (("p", stride), ("r", 1)),
                (("q", stride), ("s", 1)),
            ),
            bytes_,
        ),
        AccessPattern(
            "W",
            ((("ko", 1),), (("ci", 1),), (("r", 1),), (("s", 1),)),
            bytes_,
        ),
    )
    return Workload(
        name=name
        or f"conv2d_n{batch}_c{in_channels}_hw{height}_k{out_channels}r{kernel}s{stride}",
        tag="conv2d",
        spatial=(
            LoopDim("n", batch),
            LoopDim("ko", out_channels),
            LoopDim("p", out_h),
            LoopDim("q", out_w),
        ),
        reduction=(
            LoopDim("ci", in_channels),
            LoopDim("r", kernel),
            LoopDim("s", kernel),
        ),
        reads=reads,
        dtype=dtype,
    )


def depthwise_conv2d(
    batch: int,
    channels: int,
    height: int,
    width: int,
    kernel: int,
    stride: int = 1,
    dtype: str = "float32",
) -> Workload:
    """Depthwise 2-D convolution (one filter per channel)."""
    out_h = max(1, (height + stride - 1) // stride)
    out_w = max(1, (width + stride - 1) // stride)
    bytes_ = _DTYPE_BYTES[dtype]
    reads = (
        AccessPattern(
            "I",
            (
                (("n", 1),),
                (("c", 1),),
                (("p", stride), ("r", 1)),
                (("q", stride), ("s", 1)),
            ),
            bytes_,
        ),
        AccessPattern("W", ((("c", 1),), (("r", 1),), (("s", 1),)), bytes_),
    )
    return Workload(
        name=f"dwconv_n{batch}_c{channels}_hw{height}_r{kernel}s{stride}",
        tag="depthwise",
        spatial=(
            LoopDim("n", batch),
            LoopDim("c", channels),
            LoopDim("p", out_h),
            LoopDim("q", out_w),
        ),
        reduction=(LoopDim("r", kernel), LoopDim("s", kernel)),
        reads=reads,
        dtype=dtype,
    )


def conv2d_transpose(
    batch: int,
    in_channels: int,
    height: int,
    width: int,
    out_channels: int,
    kernel: int,
    stride: int = 2,
    dtype: str = "float32",
) -> Workload:
    """Transposed convolution (DCGAN generator); output upsampled by stride."""
    out_h = height * stride
    out_w = width * stride
    bytes_ = _DTYPE_BYTES[dtype]
    # Modelled as a conv over the upsampled output grid: each output
    # point reduces over (ci, r, s) with fractional input reuse.
    reads = (
        AccessPattern(
            "I",
            ((("n", 1),), (("ci", 1),), (("p", 1), ("r", 1)), (("q", 1), ("s", 1))),
            bytes_,
        ),
        AccessPattern(
            "W",
            ((("ci", 1),), (("ko", 1),), (("r", 1),), (("s", 1),)),
            bytes_,
        ),
    )
    return Workload(
        name=f"convT_n{batch}_c{in_channels}_hw{height}_k{out_channels}r{kernel}s{stride}",
        tag="conv2d_transpose",
        spatial=(
            LoopDim("n", batch),
            LoopDim("ko", out_channels),
            LoopDim("p", out_h),
            LoopDim("q", out_w),
        ),
        reduction=(
            LoopDim("ci", in_channels),
            LoopDim("r", max(1, kernel // stride)),
            LoopDim("s", max(1, kernel // stride)),
        ),
        reads=reads,
        dtype=dtype,
    )


def pool2d(
    batch: int,
    channels: int,
    height: int,
    width: int,
    kernel: int,
    stride: int,
    dtype: str = "float32",
) -> Workload:
    """Max/avg pooling: reduction over a small window, memory bound."""
    out_h = max(1, (height + stride - 1) // stride)
    out_w = max(1, (width + stride - 1) // stride)
    bytes_ = _DTYPE_BYTES[dtype]
    reads = (
        AccessPattern(
            "I",
            (
                (("n", 1),),
                (("c", 1),),
                (("p", stride), ("r", 1)),
                (("q", stride), ("s", 1)),
            ),
            bytes_,
        ),
    )
    return Workload(
        name=f"pool_n{batch}_c{channels}_hw{height}_r{kernel}s{stride}",
        tag="pool",
        spatial=(
            LoopDim("n", batch),
            LoopDim("c", channels),
            LoopDim("p", out_h),
            LoopDim("q", out_w),
        ),
        reduction=(LoopDim("r", kernel), LoopDim("s", kernel)),
        reads=reads,
        flops_per_point=1.0,
        dtype=dtype,
    )


def elementwise(
    shape: tuple[int, ...],
    n_inputs: int = 1,
    op: str = "relu",
    dtype: str = "float32",
) -> Workload:
    """Pure element-wise op over an N-D tensor (memory bound, no tiling)."""
    if not shape or min(shape) < 1:
        raise WorkloadError("elementwise shape must be non-empty and positive")
    bytes_ = _DTYPE_BYTES[dtype]
    dims = tuple(LoopDim(f"e{i}", extent) for i, extent in enumerate(shape))
    reads = tuple(
        AccessPattern(f"X{t}", tuple(((d.name, 1),) for d in dims), bytes_)
        for t in range(n_inputs)
    )
    return Workload(
        name=f"{op}_{'x'.join(map(str, shape))}",
        tag="elementwise",
        spatial=dims,
        reads=reads,
        flops_per_point=1.0,
        dtype=dtype,
    )
