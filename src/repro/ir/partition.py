"""Graph partitioning: cut a network DAG into fused subgraph tasks.

Follows the Ansor/Relay fusion recipe the paper inherits (Section 3):

1. every *anchor* operator (matmul / conv / depthwise / ...) greedily
   absorbs its chain of single-consumer element-wise followers as fused
   epilogues (bias-add, batch-norm, relu, residual add, gelu, ...);
2. element-wise ops that cannot be fused form stand-alone tasks (the
   paper notes these are < 3% of TenSet and are zero-padded in PaCM);
3. identical subgraphs are deduplicated into one task with an occurrence
   *weight* — the ``w_i`` used by the task scheduler and by the Top-k
   metric (Eq. 2).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.ir.dag import Graph
from repro.ir.ops import Workload


@dataclass(frozen=True)
class SubgraphTask:
    """A deduplicated tuning task: a fused workload + occurrence count."""

    workload: Workload
    weight: int = 1

    def __str__(self) -> str:
        return f"{self.workload.name} (x{self.weight})"


def partition_graph(graph: Graph) -> list[SubgraphTask]:
    """Partition a network graph into weighted fused subgraph tasks.

    Returns tasks sorted by descending total FLOPs (weight x flops), the
    order tuners conventionally prioritise.
    """
    graph.validate()
    fused_into: dict[int, int] = {}  # elementwise node -> anchor node

    for node in graph.nodes:
        if node.is_elementwise:
            continue
        # Walk the single-consumer element-wise chain below this anchor.
        current = node.node_id
        while True:
            consumers = graph.consumers(current)
            if len(consumers) != 1:
                break
            nxt = consumers[0]
            if not nxt.is_elementwise or nxt.node_id in fused_into:
                break
            # Element-wise ops with multiple non-fused inputs (e.g.
            # residual add) still fuse: the extra operand becomes one
            # more global read, reflected in the epilogue count.
            fused_into[nxt.node_id] = node.node_id
            current = nxt.node_id

    # Build fused workloads.
    epilogues: dict[int, list[str]] = {}
    for ew_id, anchor_id in fused_into.items():
        op_name = graph.node(ew_id).workload.name.split("_")[0]
        epilogues.setdefault(anchor_id, []).append(op_name)

    tasks: dict[str, SubgraphTask] = {}
    for node in graph.nodes:
        if node.node_id in fused_into:
            continue  # absorbed into an anchor
        wl = node.workload
        if node.node_id in epilogues:
            wl = wl.with_fused(*epilogues[node.node_id])
        key = wl.key
        if key in tasks:
            tasks[key] = SubgraphTask(tasks[key].workload, tasks[key].weight + 1)
        else:
            tasks[key] = SubgraphTask(wl, 1)

    ordered = sorted(
        tasks.values(), key=lambda t: t.weight * t.workload.flops, reverse=True
    )
    return ordered


def dedupe_tasks(tasks: list[SubgraphTask]) -> list[SubgraphTask]:
    """Merge tasks with identical workload keys, summing weights."""
    merged: dict[str, SubgraphTask] = {}
    for t in tasks:
        key = t.workload.key
        if key in merged:
            merged[key] = SubgraphTask(merged[key].workload, merged[key].weight + t.weight)
        else:
            merged[key] = t
    return sorted(merged.values(), key=lambda t: t.weight * t.workload.flops, reverse=True)
