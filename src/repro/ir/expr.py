"""Loop dimensions and tensor access patterns.

A workload is a perfectly nested loop over *spatial* dimensions (one
point per output element) and *reduction* dimensions.  Every input
tensor is read through an :class:`AccessPattern`: each tensor index is a
linear combination of loop variables, which is expressive enough for

* matmul        ``A[i, k]``            -> ``((('i', 1),), (('k', 1),))``
* conv2d input  ``I[n, c, p*s+r, q*s+t]`` -> compound terms with strides

From a pattern we can compute the *footprint* of any rectangular tile of
the iteration space — the quantity behind the paper's L0/L1 allocation
symbols (S1, S3) and L2 traffic symbol (S5).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.errors import WorkloadError

# One tensor index dimension: sum of (loop_name * coeff) terms.
IndexDim = tuple[tuple[str, int], ...]


@dataclass(frozen=True)
class LoopDim:
    """A named loop with a positive integer extent."""

    name: str
    extent: int

    def __post_init__(self) -> None:
        if self.extent < 1:
            raise WorkloadError(f"loop {self.name!r} must have extent >= 1, got {self.extent}")

    def __str__(self) -> str:
        return f"{self.name}[{self.extent}]"


@dataclass(frozen=True)
class AccessPattern:
    """How one tensor is indexed by the loop nest.

    Attributes
    ----------
    tensor:
        Buffer name (e.g. ``"A"``).
    index:
        Per tensor dimension, a tuple of ``(loop_name, coefficient)``
        terms; the index value is their weighted sum.
    dtype_bytes:
        Element size in bytes (4 for float32, 2 for float16).
    """

    tensor: str
    index: tuple[IndexDim, ...]
    dtype_bytes: int = 4

    def loops(self) -> set[str]:
        """Names of all loop variables this access depends on."""
        return {name for dim in self.index for name, _ in dim}

    def dim_extent(self, dim: IndexDim, tile: Mapping[str, int]) -> int:
        """Span of one tensor index dimension over a tile.

        ``tile`` maps loop names to tile sizes.  Loops absent from the
        map contribute their full... no — absent loops contribute 1
        (they are fixed at a single value inside the tile).
        """
        span = 1
        for loop_name, coeff in dim:
            t = tile.get(loop_name, 1)
            span += coeff * (t - 1)
        return span

    def footprint(self, tile: Mapping[str, int]) -> int:
        """Number of distinct elements touched by a rectangular tile."""
        elems = 1
        for dim in self.index:
            elems *= self.dim_extent(dim, tile)
        return elems

    def footprint_bytes(self, tile: Mapping[str, int]) -> int:
        """Footprint in bytes."""
        return self.footprint(tile) * self.dtype_bytes

    def innermost_span(self, tile: Mapping[str, int]) -> int:
        """Contiguous span along the tensor's last (fastest) dimension.

        Drives the L2 transaction symbol S7: short innermost spans mean
        poorly coalesced global memory accesses.
        """
        if not self.index:
            return 1
        return self.dim_extent(self.index[-1], tile)

    def reuse(self, tile: Mapping[str, int], all_loops: Mapping[str, int]) -> float:
        """Average number of times each touched element is read in a tile.

        Computed as (iteration points in the tile) / footprint, where
        the iteration space is restricted to ``all_loops``.
        """
        points = 1
        for name, t in all_loops.items():
            points *= tile.get(name, 1) if name in tile else 1
        fp = self.footprint(tile)
        return points / max(1, fp)
