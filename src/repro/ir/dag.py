"""Network-level operator graphs.

A :class:`Graph` is a DAG of :class:`OpNode` instances, each wrapping a
:class:`~repro.ir.ops.Workload`.  Networks in :mod:`repro.workloads`
are expressed as graphs and then cut into fused subgraph tuning tasks by
:mod:`repro.ir.partition` — the "graph partition" stage in the paper's
Figure 1/2 workflow.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import WorkloadError
from repro.ir.ops import Workload


@dataclass
class OpNode:
    """One operator instance in a network graph."""

    node_id: int
    workload: Workload
    inputs: tuple[int, ...] = ()

    @property
    def is_elementwise(self) -> bool:
        """True for pure element-wise ops (fusable into an upstream anchor)."""
        return self.workload.tag == "elementwise"


@dataclass
class Graph:
    """An operator DAG with explicit edges."""

    nodes: list[OpNode] = field(default_factory=list)

    def node(self, node_id: int) -> OpNode:
        """Look up a node by id."""
        return self.nodes[node_id]

    def consumers(self, node_id: int) -> list[OpNode]:
        """All nodes that read the output of ``node_id``."""
        return [n for n in self.nodes if node_id in n.inputs]

    def validate(self) -> None:
        """Check edge references; raise WorkloadError on dangling inputs."""
        ids = {n.node_id for n in self.nodes}
        for n in self.nodes:
            for src in n.inputs:
                if src not in ids:
                    raise WorkloadError(
                        f"node {n.node_id} reads undefined node {src}"
                    )

    def __len__(self) -> int:
        return len(self.nodes)


class GraphBuilder:
    """Incrementally builds a :class:`Graph`.

    Example
    -------
    >>> from repro.ir import ops
    >>> b = GraphBuilder()
    >>> a = b.add(ops.matmul(128, 128, 128))
    >>> r = b.add(ops.elementwise((128, 128), op="relu"), inputs=[a])
    >>> len(b.graph())
    2
    """

    def __init__(self) -> None:
        self._nodes: list[OpNode] = []

    def add(self, workload: Workload, inputs: list[int] | None = None) -> int:
        """Append an operator; returns its node id."""
        node_id = len(self._nodes)
        self._nodes.append(OpNode(node_id, workload, tuple(inputs or ())))
        return node_id

    def graph(self) -> Graph:
        """Finalize and validate the graph."""
        g = Graph(list(self._nodes))
        g.validate()
        return g
