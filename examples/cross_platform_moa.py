"""Cross-platform online adaptation with MoA (paper Section 4.3).

Demonstrates the *cross-platform online unawareness* problem and MoA's
answer: a PaCM pre-trained on the simulated K80 ranks schedules notably
worse on the A100 (the device residuals differ), and the momentum
siamese update adapts it online without a target-platform dataset.

    python examples/cross_platform_moa.py
"""

import numpy as np

from repro.core.moa import MomentumAdapter
from repro.costmodel import PaCM
from repro.dataset import tenset_dataset, top_k_score
from repro.experiments.common import get_scale, pretrained_params
from repro.rng import make_rng
from repro.workloads import network_tasks
from repro import api


def main() -> None:
    scale = get_scale("lite")
    subgraphs = network_tasks("bert_base", top_k=scale.tasks_per_network)

    # 1. pre-train PaCM on the source platform (K80)
    source_params = pretrained_params(
        "pacm", "k80", subgraphs, scale, corpus_tag="example-moa"
    )

    # 2. the cross-platform gap: evaluate the K80 model on A100 data
    a100_data = tenset_dataset(
        "a100",
        networks=("bert_base",),
        schedules_per_task=scale.dataset_schedules,
        tasks_per_network=scale.tasks_per_network,
    )
    k80_model = PaCM()
    k80_model.set_params(source_params)
    print(f"K80-pretrained PaCM on A100 data: top-1 = "
          f"{top_k_score(k80_model, a100_data, k=1):.3f} (cross-platform gap)")

    # 3. tune on A100: pure online Pruner vs MoA-Pruner (same budget)
    online = api.build_tuner(
        "pruner", subgraphs, "a100", search=scale.search, train=scale.train
    ).tune(scale.rounds)
    moa_tuner = api.build_tuner(
        "moa-pruner",
        subgraphs,
        "a100",
        search=scale.search,
        train=scale.train,
        pretrained=source_params,
    )
    moa = moa_tuner.tune(scale.rounds)

    # 4. MoA's cross-platform initialisation pays off early: compare the
    #    curves at the halfway point and at the end.
    half = len(online.curve) // 2
    print(f"half-way latency : online {online.curve[half].latency * 1e3:.3f} ms"
          f"  vs MoA {moa.curve[half].latency * 1e3:.3f} ms")
    print(f"final latency    : online {online.final_latency * 1e3:.3f} ms"
          f"  vs MoA {moa.final_latency * 1e3:.3f} ms")

    # 5. and the siamese weights moved toward the target platform
    adapter: MomentumAdapter = moa_tuner.adapter
    drift = adapter.drift(source_params)
    print(f"siamese parameter drift from the K80 checkpoint: {drift:.4f}")


if __name__ == "__main__":
    main()
