"""Tuning as a service: job queue, worker pool, persistent warm starts.

Demonstrates the `repro.service` workflow:

1. submit several tuning jobs to a :class:`TuningService`,
2. drain them with a multi-worker pool (each job deterministic),
3. read best schedules back from the persistent record store,
4. resubmit the same workload — the second run warm-starts from the
   cached records and measures (almost) nothing new.

    python examples/tune_service.py
"""

from __future__ import annotations

import tempfile

from repro.service import TuningService


def main() -> None:
    with tempfile.TemporaryDirectory(prefix="pruner-cache-") as cache_dir:
        service = TuningService(cache_dir, workers=2)

        # 1. queue a few jobs (higher priority runs first)
        jobs = [
            service.submit("bert_tiny", device="a100", rounds=8, priority=1),
            service.submit("bert_tiny", device="t4", rounds=8),
            service.submit("gpt2", device="a100", rounds=8, top_k_tasks=3),
        ]

        # 2. run them across the worker pool
        print(f"running {len(jobs)} jobs on 2 workers ...")
        states = service.run()
        for job_id, state in states.items():
            if state != "done":
                print(f"  {job_id}: {state} ({service.queue.get(job_id).error})")
                continue
            result = service.result(job_id)
            print(
                f"  {job_id}: {state}, {result.fresh_trials} trials measured,"
                f" final {result.final_latency * 1e6:.1f} us"
            )

        # 3. best schedules survive in the record store
        summary = service.best_schedule("bert_tiny", device="a100")
        print(f"\nbest schedules for bert_tiny@a100 ({len(summary['tasks'])} tasks):")
        for task_key, entry in sorted(summary["tasks"].items()):
            print(f"  {entry['latency'] * 1e6:8.1f} us  x{entry['weight']}  {task_key}")

        # 4. warm start: same workload again, same cache
        warm = TuningService(cache_dir, workers=2)
        job_id = warm.submit("bert_tiny", device="a100", rounds=8, priority=1)
        warm.run()
        result = warm.result(job_id)
        print(
            f"\nwarm rerun: {result.seeded_trials} trials loaded from cache,"
            f" {result.fresh_trials} fresh, final {result.final_latency * 1e6:.1f} us"
        )


if __name__ == "__main__":
    main()
