"""Quickstart: tune a single matmul with Pruner's draft-then-verify search.

Runs in a few seconds and prints the tuning progress of the paper's core
mechanism: the Latent Schedule Explorer drafts candidates with the
Symbol-based Analyzer; the Pattern-aware Cost Model verifies and picks
what gets measured.

    python examples/quickstart.py
"""

from repro import api
from repro.ir import ops
from repro.ir.partition import SubgraphTask


def main() -> None:
    # 1. define a workload: C[i, j] += A[i, k] * B[k, j], fused ReLU
    workload = ops.matmul(512, 512, 512).with_fused("relu")
    print(f"workload: {workload}  ({workload.flops / 1e6:.0f} MFLOPs)")

    # 2. tune it on the simulated A100 with the Pruner policy
    result = api.tune_subgraphs(
        method="pruner",
        subgraphs=[SubgraphTask(workload, weight=1)],
        device="a100",
        rounds=12,
        scale="lite",
    )

    # 3. inspect the outcome
    print(f"trials measured : {result.total_trials}")
    print(f"best latency    : {result.final_latency * 1e6:.1f} us")
    print(f"search time     : {result.clock.total:.0f} simulated seconds")
    print("clock breakdown :", {
        k: f"{v:.1f}s" for k, v in result.clock.breakdown().items()
    })
    print("tuning curve (time s -> latency us):")
    for point in result.curve[:: max(1, len(result.curve) // 6)]:
        print(f"  {point.sim_time:7.1f}s  {point.latency * 1e6:8.1f} us")


if __name__ == "__main__":
    main()
