"""Dataset metrics: generate a TenSet-style corpus and score cost models.

Reproduces the Section 6.5 methodology at example scale: build a
labelled corpus on the simulated T4, train TenSetMLP / TLP / PaCM, and
report the Top-k metric (Eq. 2) on held-out networks, plus the Best-k
quality (Eq. 3) of LSE's drafted candidate sets.

    python examples/cost_model_dataset.py
"""

import math

from repro.config import SearchConfig
from repro.core.analyzer import SymbolBasedAnalyzer
from repro.core.lse import LatentScheduleExplorer
from repro.costmodel import PaCM, TenSetMLP, TLPModel
from repro.dataset import best_k_score, tenset_dataset, top_k_score
from repro.dataset.tenset import TEST_NETWORKS, TRAIN_NETWORKS
from repro.experiments.common import get_scale
from repro.hardware.device import get_device
from repro.hardware.simulator import GroundTruthSimulator
from repro.rng import make_rng
from repro.schedule import generate_sketch, lower


def main() -> None:
    scale = get_scale("lite")
    print("generating TenSet-style corpora on the simulated T4 ...")
    train_set = tenset_dataset(
        "t4",
        networks=TRAIN_NETWORKS,
        schedules_per_task=scale.dataset_schedules,
        tasks_per_network=scale.tasks_per_network,
    )
    test_set = tenset_dataset(
        "t4",
        networks=TEST_NETWORKS[:3],
        schedules_per_task=scale.dataset_schedules,
        tasks_per_network=scale.tasks_per_network,
        seed=1,
    )
    print(f"train: {len(train_set)} programs / {len(train_set.task_keys)} tasks; "
          f"test: {len(test_set)} programs")

    progs, lats, keys = train_set.training_data()
    for name, model in (
        ("TenSetMLP", TenSetMLP()),
        ("TLP", TLPModel()),
        ("PaCM", PaCM()),
    ):
        model.fit(progs, lats, keys, train=scale.offline_train, rng=make_rng(0))
        top1 = top_k_score(model, test_set, k=1)
        top5 = top_k_score(model, test_set, k=5)
        print(f"{name:10s} top-1={top1:.3f}  top-5={top5:.3f}")

    # Best-k of LSE's drafted sets (Eq. 3) on the test tasks
    device = get_device("t4")
    sim = GroundTruthSimulator(device)
    lse = LatentScheduleExplorer(
        SymbolBasedAnalyzer(device),
        SearchConfig(population=64, ga_steps=3, spec_size=48),
    )
    spec_lat, optimal, weights = {}, {}, {}
    for key, entries in test_set.by_task().items():
        space = generate_sketch(entries[0].prog.workload)
        result = lse.explore(space, make_rng(1))
        spec_lat[key] = [sim.latency(lower(space, c)) for c in result.spec]
        pool_best = min(e.latency for e in entries if math.isfinite(e.latency))
        spec_best = min(l for l in spec_lat[key] if math.isfinite(l))
        optimal[key] = min(pool_best, spec_best)
        weights[key] = entries[0].weight
    for k in (1, 5):
        print(f"LSE Best-{k} = {best_k_score(spec_lat, optimal, weights, k=k):.3f}")


if __name__ == "__main__":
    main()
