"""End-to-end network tuning: ResNet-50, online mode, three tuners.

Reproduces the Figure 6 experience at example scale: partition the
network into weighted subgraph tasks, tune with Ansor / Pruner /
MoA-Pruner, and compare tuning curves and search time.

    python examples/tune_resnet_online.py
"""

from repro import api
from repro.experiments.common import get_scale, pretrained_params
from repro.workloads import network_tasks


def main() -> None:
    scale = get_scale("lite")
    subgraphs = network_tasks("resnet50", top_k=scale.tasks_per_network)
    print(f"ResNet-50 partitioned into {len(subgraphs)} heaviest tasks:")
    for sub in subgraphs:
        print(f"  {sub}")

    results = {}
    for method in ("ansor", "pruner", "moa-pruner"):
        pretrained = None
        if method == "moa-pruner":
            # cross-platform siamese, pre-trained on the simulated K80
            pretrained = pretrained_params(
                "pacm", "k80", subgraphs, scale, corpus_tag="example-r50"
            )
        tuner = api.build_tuner(
            method,
            subgraphs,
            "a100",
            search=scale.search,
            train=scale.train,
            pretrained=pretrained,
        )
        results[method] = tuner.tune(scale.rounds)
        r = results[method]
        print(
            f"{method:12s} final={r.final_latency * 1e3:7.3f} ms  "
            f"search={r.clock.total:6.0f} s  trials={r.total_trials}"
        )

    target = results["ansor"].final_latency
    for method in ("pruner", "moa-pruner"):
        t = results[method].time_to(target)
        total = results["ansor"].clock.total
        print(
            f"{method} reaches Ansor's final quality in {t:.0f}s "
            f"vs Ansor's {total:.0f}s -> {total / t:.2f}x search speedup"
        )


if __name__ == "__main__":
    main()
