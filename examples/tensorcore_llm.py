"""TensorCore LLM tuning (paper Section 6.4).

Tunes GPT-2's fp16 subgraphs on the simulated A100 TensorCores with
MetaSchedule and with Pruner-in-MetaSchedule (WMMA-constrained sketches,
TensorCore symbol in LSE, shared->fragment dataflow block in PaCM), and
compares against the cudaLib surrogate — including the splitK cases of
Table 8.

    python examples/tensorcore_llm.py
"""

from repro import api
from repro.experiments.common import get_scale
from repro.hardware.device import get_device
from repro.hardware.library import LibrarySurrogate
from repro.ir import ops
from repro.workloads import network_tasks


def main() -> None:
    scale = get_scale("lite")
    device = get_device("a100")
    subgraphs = network_tasks(
        "gpt2", dtype="float16", top_k=scale.tasks_per_network
    )
    eligible = sum(1 for s in subgraphs if s.workload.tensorcore_eligible)
    print(f"GPT-2 fp16: {len(subgraphs)} tasks, {eligible} TensorCore-eligible")

    for method in ("metaschedule", "pruner-tc"):
        tuner = api.build_tuner(
            method, subgraphs, device, search=scale.search, train=scale.train
        )
        result = tuner.tune(scale.rounds)
        print(
            f"{method:13s} final={result.final_latency * 1e3:7.3f} ms  "
            f"search={result.clock.total:5.0f} s"
        )

    # Table 8's splitK story on one long-reduction linear layer
    lib = LibrarySurrogate(device)
    wl = ops.matmul(128, 768, 3072, dtype="float16")
    kernel = lib.kernel(wl, tensorcore=True)
    print(
        f"cudaLib on (128,768,3072): {kernel.latency * 1e6:.1f} us "
        f"(splitK={'yes' if kernel.used_splitk else 'no'}) — the library's "
        f"best case: a long reduction axis with a small parallel extent"
    )


if __name__ == "__main__":
    main()
